"""Dimension types of the multidimensional keyword space (paper §3.1).

Each data element is described by a tuple of keywords/attribute values, one
per dimension.  A dimension knows how to map its values onto the discrete
coordinate axis ``[0, 2**bits)`` of the curve *monotonically* (so
lexicographic / numeric locality becomes coordinate locality) and how to turn
the flexible query terms that apply to it (exact value, prefix, range) into
*covering* coordinate intervals.

Coverage vs. exactness: the coordinate mapping quantizes, so an interval may
cover extra values.  That is safe — the query engine post-filters candidate
data elements against the original terms at the data nodes — and necessary,
because e.g. distinct long words can share a coordinate.  The contract each
dimension must satisfy (and that the property tests verify) is::

    term applies to value  =>  encode(value) in interval_for_term(term)

Dimensions are stateless with respect to the curve order: ``bits`` is passed
in by the owning :class:`~repro.keywords.space.KeywordSpace`.
"""

from __future__ import annotations

import math
import string
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import KeywordError

__all__ = ["Dimension", "WordDimension", "NumericDimension", "CategoricalDimension"]

_ALPHABET = string.ascii_lowercase
_BASE = len(_ALPHABET)


class Dimension(ABC):
    """One axis of the keyword space."""

    def __init__(self, name: str) -> None:
        if not name:
            raise KeywordError("dimension name must be non-empty")
        self.name = name

    @abstractmethod
    def encode(self, value: Any, bits: int) -> int:
        """Deterministic monotone coordinate of ``value`` in ``[0, 2**bits)``."""

    @abstractmethod
    def interval_for_exact(self, value: Any, bits: int) -> tuple[int, int]:
        """Covering coordinate interval for an exact-value term."""

    @abstractmethod
    def validate(self, value: Any) -> Any:
        """Normalize/validate a published value; raise :class:`KeywordError`."""

    @abstractmethod
    def matches_exact(self, stored: Any, queried: Any) -> bool:
        """Post-filter: does the stored value satisfy an exact term?"""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class WordDimension(Dimension):
    """Lowercase-alphabetic keyword axis with lexicographic locality.

    A word is read as a base-26 fraction in ``[0, 1)`` (``'a'`` → digit 0,
    ``'z'`` → 25) and quantized to ``bits`` bits.  Only the first
    :meth:`significant_chars` characters influence the coordinate — a fixed
    truncation applied identically at publish and query time, so placement
    and lookup always agree.  Lexicographically close words ("computer",
    "computation") therefore land on nearby coordinates, which is exactly the
    locality the Hilbert mapping preserves.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)

    @staticmethod
    def significant_chars(bits: int) -> int:
        """Smallest ``t`` with ``26**t >= 2**bits``: chars that can matter."""
        return max(1, math.ceil(bits / math.log2(_BASE)))

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise KeywordError(f"{self.name}: expected a string, got {type(value).__name__}")
        word = value.lower()
        if not word:
            raise KeywordError(f"{self.name}: empty keyword")
        for ch in word:
            if ch not in _ALPHABET:
                raise KeywordError(
                    f"{self.name}: keyword {value!r} contains non-alphabetic character {ch!r}"
                )
        return word

    def encode(self, value: Any, bits: int) -> int:
        word = self.validate(value)
        trunc = word[: self.significant_chars(bits)]
        length = len(trunc)
        numerator = _word_value(trunc)
        # floor(frac * 2**bits) computed exactly in integer arithmetic.
        return (numerator << bits) // (_BASE**length)

    def interval_for_exact(self, value: Any, bits: int) -> tuple[int, int]:
        # A whole keyword maps to a single coordinate (the paper's "at most
        # one point in the index space" for fully specified queries): every
        # copy of the word encodes identically, so the point interval covers
        # all true matches; quantization collisions are post-filtered.
        coord = self.encode(value, bits)
        return coord, coord

    def interval_for_prefix(self, prefix: Any, bits: int) -> tuple[int, int]:
        """Covering interval for all words starting with ``prefix``."""
        word = self.validate(prefix)
        trunc = word[: self.significant_chars(bits)]
        length = len(trunc)
        value = _word_value(trunc)
        denominator = _BASE**length
        low = (value << bits) // denominator
        high = (((value + 1) << bits) - 1) // denominator
        return low, min(high, (1 << bits) - 1)

    def matches_exact(self, stored: Any, queried: Any) -> bool:
        return self.validate(stored) == self.validate(queried)

    def matches_prefix(self, stored: Any, prefix: Any) -> bool:
        return self.validate(stored).startswith(self.validate(prefix))


class NumericDimension(Dimension):
    """Numeric attribute axis (e.g. memory MB, CPU MHz, bandwidth Mbps).

    Values in ``[minimum, maximum]`` map linearly (or logarithmically, for
    heavy-tailed attributes) onto the coordinate axis; the mapping is
    monotone so numeric ranges become coordinate intervals — this is what
    gives Squid its range queries over grid resource attributes.
    """

    def __init__(
        self,
        name: str,
        minimum: float,
        maximum: float,
        log_scale: bool = False,
    ) -> None:
        super().__init__(name)
        if not (maximum > minimum):
            raise KeywordError(f"{self.name}: maximum must exceed minimum")
        if log_scale and minimum <= 0:
            raise KeywordError(f"{self.name}: log scale requires a positive minimum")
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        self.log_scale = bool(log_scale)

    def validate(self, value: Any) -> float:
        try:
            v = float(value)
        except (TypeError, ValueError):
            raise KeywordError(f"{self.name}: {value!r} is not numeric") from None
        if math.isnan(v):
            raise KeywordError(f"{self.name}: NaN is not a valid value")
        if not (self.minimum <= v <= self.maximum):
            raise KeywordError(
                f"{self.name}: {v} outside [{self.minimum}, {self.maximum}]"
            )
        return v

    def _fraction(self, value: float) -> float:
        if self.log_scale:
            return math.log(value / self.minimum) / math.log(self.maximum / self.minimum)
        return (value - self.minimum) / (self.maximum - self.minimum)

    def encode(self, value: Any, bits: int) -> int:
        v = self.validate(value)
        side = 1 << bits
        coord = int(self._fraction(v) * side)
        return min(coord, side - 1)

    def interval_for_exact(self, value: Any, bits: int) -> tuple[int, int]:
        coord = self.encode(value, bits)
        return coord, coord

    def interval_for_range(
        self, low: float | None, high: float | None, bits: int
    ) -> tuple[int, int]:
        """Covering interval for a numeric range; ``None`` ends are open."""
        lo_v = self.minimum if low is None else self.validate(low)
        hi_v = self.maximum if high is None else self.validate(high)
        if lo_v > hi_v:
            raise KeywordError(f"{self.name}: empty range [{lo_v}, {hi_v}]")
        return self.encode(lo_v, bits), self.encode(hi_v, bits)

    def matches_exact(self, stored: Any, queried: Any) -> bool:
        return self.validate(stored) == self.validate(queried)

    def matches_range(self, stored: Any, low: float | None, high: float | None) -> bool:
        v = self.validate(stored)
        if low is not None and v < float(low):
            return False
        if high is not None and v > float(high):
            return False
        return True


class CategoricalDimension(Dimension):
    """Small closed vocabulary axis (e.g. operating-system type).

    Categories are spread evenly over the coordinate axis in declaration
    order; an exact term covers exactly its category's coordinate band, so
    categorical equality queries touch a single contiguous region.
    """

    def __init__(self, name: str, categories: list[str]) -> None:
        super().__init__(name)
        if not categories:
            raise KeywordError(f"{self.name}: at least one category required")
        if len(set(categories)) != len(categories):
            raise KeywordError(f"{self.name}: duplicate categories")
        self.categories = tuple(categories)
        self._rank = {c: i for i, c in enumerate(self.categories)}

    def validate(self, value: Any) -> str:
        if value not in self._rank:
            raise KeywordError(
                f"{self.name}: unknown category {value!r}; expected one of {self.categories}"
            )
        return value

    def encode(self, value: Any, bits: int) -> int:
        rank = self._rank[self.validate(value)]
        return (rank << bits) // len(self.categories)

    def interval_for_exact(self, value: Any, bits: int) -> tuple[int, int]:
        # Every copy of a category encodes to the same coordinate, so the
        # point interval covers all true matches.
        coord = self.encode(value, bits)
        return coord, coord

    def matches_exact(self, stored: Any, queried: Any) -> bool:
        return self.validate(stored) == self.validate(queried)


def _word_value(word: str) -> int:
    """Integer value of a word as base-26 digits ('a' = 0)."""
    value = 0
    for ch in word:
        value = value * _BASE + (ord(ch) - ord("a"))
    return value
