"""Keyword extraction: from document text to a Squid keyword tuple.

The paper's storage use case describes documents by "common words"; this
module provides the missing glue for real content — tokenize, drop
stopwords, rank by frequency (ties broken by first appearance), and emit
the top-``count`` keywords ready for :meth:`SquidSystem.publish`.

Deliberately simple and dependency-free: lowercasing, alphabetic tokens
only (matching :class:`~repro.keywords.dimensions.WordDimension`'s
alphabet), a compact English stopword list.
"""

from __future__ import annotations

import re

from repro.errors import KeywordError

__all__ = ["STOPWORDS", "tokenize", "extract_keywords"]

STOPWORDS = frozenset(
    """
    a about above after again all also am an and any are as at be because
    been before being below between both but by can could did do does doing
    down during each few for from further had has have having he her here
    hers him his how i if in into is it its itself just me more most my no
    nor not now of off on once only or other our ours out over own same she
    should so some such than that the their theirs them then there these
    they this those through to too under until up very was we were what
    when where which while who whom why will with would you your yours
    """.split()
)

_TOKEN_RE = re.compile(r"[A-Za-z]+")


def tokenize(text: str) -> list[str]:
    """Lowercase alphabetic tokens of ``text``, in order of appearance."""
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


def extract_keywords(
    text: str,
    count: int,
    min_length: int = 2,
    stopwords: frozenset[str] = STOPWORDS,
) -> tuple[str, ...]:
    """The ``count`` most frequent content words of ``text``.

    Ranking is by descending frequency, ties by first appearance (so the
    result is deterministic and reflects the document's own emphasis).
    Raises :class:`KeywordError` when the text yields fewer than ``count``
    distinct content words — the caller decides whether to pad
    (:meth:`KeywordSpace.pad_key`) or reject.
    """
    if count < 1:
        raise KeywordError(f"count must be >= 1, got {count}")
    frequency: dict[str, int] = {}
    first_seen: dict[str, int] = {}
    for position, token in enumerate(tokenize(text)):
        if len(token) < min_length or token in stopwords:
            continue
        frequency[token] = frequency.get(token, 0) + 1
        first_seen.setdefault(token, position)
    if len(frequency) < count:
        raise KeywordError(
            f"text yields only {len(frequency)} content words; {count} needed "
            "(consider KeywordSpace.pad_key for short documents)"
        )
    ranked = sorted(frequency, key=lambda w: (-frequency[w], first_seen[w]))
    return tuple(ranked[:count])
