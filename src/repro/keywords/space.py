"""The multidimensional keyword space (paper §3.1).

A :class:`KeywordSpace` binds a tuple of typed dimensions to a common
coordinate resolution (``bits`` per dimension, the curve order) and provides
the two translations the rest of the system is built on:

* **publish path** — ``coordinates(key)``: a data element's keyword tuple →
  a point of the discrete cube (then Hilbert-encoded to its index);
* **query path** — ``region(query)``: a flexible query → the axis-aligned
  coordinate region whose curve clusters drive distributed resolution, plus
  ``matches(key, query)``: the exactness post-filter applied at data nodes.

Exactness invariant (property-tested): for every key and query,
``matches(key, query)`` implies ``region(query).contains_point(coordinates(key))``
— covering regions never lose true matches; quantization only ever adds
candidates that the post-filter removes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, KeywordError
from repro.keywords.dimensions import Dimension, NumericDimension, WordDimension
from repro.keywords.query import Exact, NumericRange, Prefix, Query, Term, Wildcard, parse_terms
from repro.sfc.regions import Region

__all__ = ["KeywordSpace", "Key"]

Key = tuple[Any, ...]


class KeywordSpace:
    """A typed d-dimensional keyword space at ``bits`` bits per dimension."""

    def __init__(self, dimensions: Sequence[Dimension], bits: int) -> None:
        if not dimensions:
            raise KeywordError("a keyword space needs at least one dimension")
        if bits < 1:
            raise KeywordError(f"bits must be >= 1, got {bits}")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise KeywordError(f"duplicate dimension names: {names}")
        self.dimensions = tuple(dimensions)
        self.bits = bits

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.dimensions)

    @property
    def side(self) -> int:
        return 1 << self.bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(d.name for d in self.dimensions)
        return f"KeywordSpace([{names}], bits={self.bits})"

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    def validate_key(self, key: Sequence[Any]) -> Key:
        """Normalize a keyword tuple (lowercase words, float numerics)."""
        if len(key) != self.dims:
            raise DimensionMismatchError(self.dims, len(key))
        return tuple(dim.validate(v) for dim, v in zip(self.dimensions, key))

    def pad_key(self, key: Sequence[Any]) -> Key:
        """Extend a partial keyword sequence to full dimensionality.

        The paper associates each data element with "a sequence of one or
        more keywords (up to d keywords)"; an element described by fewer
        keywords than dimensions has them repeated cyclically (the Squid
        convention), so a one-keyword document matches that keyword queried
        on *any* dimension.  Only meaningful when all dimensions share a
        type (e.g. an all-words storage space); validation still applies
        per dimension.
        """
        if not key:
            raise KeywordError("a key needs at least one value")
        if len(key) > self.dims:
            raise DimensionMismatchError(self.dims, len(key))
        values = list(key)
        padded = [values[i % len(values)] for i in range(self.dims)]
        return self.validate_key(padded)

    def coordinates(self, key: Sequence[Any]) -> tuple[int, ...]:
        """Coordinate point of a keyword tuple."""
        if len(key) != self.dims:
            raise DimensionMismatchError(self.dims, len(key))
        return tuple(dim.encode(v, self.bits) for dim, v in zip(self.dimensions, key))

    def coordinates_many(self, keys: Iterable[Sequence[Any]]) -> np.ndarray:
        """Bulk :meth:`coordinates`: returns an ``(N, dims)`` int64 array."""
        rows = [self.coordinates(key) for key in keys]
        if not rows:
            return np.empty((0, self.dims), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def as_query(self, query: "Query | str | Sequence[Term]") -> Query:
        """Coerce a query given as AST, text, or term sequence; type-check it."""
        if isinstance(query, str):
            q = parse_terms(query)
        elif isinstance(query, Query):
            q = query
        else:
            q = Query(tuple(query))
        if q.dims != self.dims:
            raise DimensionMismatchError(self.dims, q.dims)
        for dim, term in zip(self.dimensions, q.terms):
            self._check_term(dim, term)
        return q

    def _check_term(self, dim: Dimension, term: Term) -> None:
        if isinstance(term, Wildcard):
            return
        if isinstance(term, Prefix):
            if not isinstance(dim, WordDimension):
                raise KeywordError(
                    f"{dim.name}: prefix term {term} requires a word dimension"
                )
            dim.validate(term.prefix)
        elif isinstance(term, NumericRange):
            if not isinstance(dim, NumericDimension):
                raise KeywordError(
                    f"{dim.name}: range term {term} requires a numeric dimension"
                )
        elif isinstance(term, Exact):
            dim.validate(term.value)
        else:  # pragma: no cover - defensive
            raise KeywordError(f"unknown term type {term!r}")

    def region(self, query: "Query | str | Sequence[Term]") -> Region:
        """Covering coordinate region of a flexible query."""
        q = self.as_query(query)
        bounds: list[tuple[int, int]] = []
        for dim, term in zip(self.dimensions, q.terms):
            bounds.append(self._interval(dim, term))
        return Region.from_bounds(bounds)

    def _interval(self, dim: Dimension, term: Term) -> tuple[int, int]:
        if isinstance(term, Wildcard):
            return 0, self.side - 1
        if isinstance(term, Prefix):
            assert isinstance(dim, WordDimension)
            return dim.interval_for_prefix(term.prefix, self.bits)
        if isinstance(term, NumericRange):
            assert isinstance(dim, NumericDimension)
            low, high = term.low, term.high
            if low is not None and low < dim.minimum:
                low = dim.minimum
            if high is not None and high > dim.maximum:
                high = dim.maximum
            return dim.interval_for_range(low, high, self.bits)
        assert isinstance(term, Exact)
        return dim.interval_for_exact(term.value, self.bits)

    # ------------------------------------------------------------------
    # Exactness post-filter
    # ------------------------------------------------------------------
    def matches(self, key: Sequence[Any], query: "Query | str | Sequence[Term]") -> bool:
        """Does a stored keyword tuple satisfy the query exactly?"""
        q = self.as_query(query)
        if len(key) != self.dims:
            raise DimensionMismatchError(self.dims, len(key))
        for dim, value, term in zip(self.dimensions, key, q.terms):
            if not self._term_matches(dim, value, term):
                return False
        return True

    @staticmethod
    def _term_matches(dim: Dimension, value: Any, term: Term) -> bool:
        if isinstance(term, Wildcard):
            return True
        if isinstance(term, Prefix):
            assert isinstance(dim, WordDimension)
            return dim.matches_prefix(value, term.prefix)
        if isinstance(term, NumericRange):
            assert isinstance(dim, NumericDimension)
            return dim.matches_range(value, term.low, term.high)
        assert isinstance(term, Exact)
        return dim.matches_exact(value, term.value)
