"""Keyword space: typed dimensions, flexible queries, and their encoding."""

from repro.keywords.dimensions import (
    CategoricalDimension,
    Dimension,
    NumericDimension,
    WordDimension,
)
from repro.keywords.extract import STOPWORDS, extract_keywords, tokenize
from repro.keywords.query import (
    Exact,
    NumericRange,
    Prefix,
    Query,
    Term,
    Wildcard,
    parse_terms,
)
from repro.keywords.space import Key, KeywordSpace

__all__ = [
    "Dimension",
    "WordDimension",
    "NumericDimension",
    "CategoricalDimension",
    "Query",
    "Term",
    "Wildcard",
    "Exact",
    "Prefix",
    "NumericRange",
    "parse_terms",
    "KeywordSpace",
    "Key",
    "extract_keywords",
    "tokenize",
    "STOPWORDS",
]
