"""Flexible query AST and textual parser (paper §3.3).

A query assigns one *term* to each dimension of the keyword space:

* :class:`Wildcard` — ``*``: any value;
* :class:`Exact` — a whole keyword / numeric value / category;
* :class:`Prefix` — a partial keyword with a trailing wildcard, ``comp*``;
* :class:`NumericRange` — ``256-512`` (inclusive), with open ends spelled
  ``*`` (``256-*`` means "at least 256").

The textual form matches the paper's examples: ``(computer, network)``,
``(comp*, net*)``, ``(256-512, *, 10-*)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Sequence, Union

from repro.errors import KeywordError, QueryParseError

__all__ = [
    "Wildcard",
    "Exact",
    "Prefix",
    "NumericRange",
    "Term",
    "Query",
    "parse_terms",
]


@dataclass(frozen=True)
class Wildcard:
    """Matches every value on its dimension."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Exact:
    """Matches exactly one value."""

    value: Any

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Prefix:
    """Matches every word starting with ``prefix`` (word dimensions only)."""

    prefix: str

    def __str__(self) -> str:
        return f"{self.prefix}*"


@dataclass(frozen=True)
class NumericRange:
    """Matches numeric values in ``[low, high]``; ``None`` ends are open."""

    low: float | None
    high: float | None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.low > self.high:
            raise KeywordError(f"empty numeric range [{self.low}, {self.high}]")

    def __str__(self) -> str:
        lo = "*" if self.low is None else _fmt_num(self.low)
        hi = "*" if self.high is None else _fmt_num(self.high)
        return f"{lo}-{hi}"


Term = Union[Wildcard, Exact, Prefix, NumericRange]


@dataclass(frozen=True)
class Query:
    """One term per dimension of the keyword space.

    ``Query`` is deliberately space-agnostic: binding to a concrete
    :class:`~repro.keywords.space.KeywordSpace` (term/dimension type checks,
    region construction, match post-filtering) happens in the space.
    """

    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise KeywordError("a query needs at least one term")

    @property
    def dims(self) -> int:
        return len(self.terms)

    @property
    def is_fully_specified(self) -> bool:
        """True when every term is Exact — the paper's point-lookup case."""
        return all(isinstance(t, Exact) for t in self.terms)

    @property
    def wildcard_count(self) -> int:
        return sum(1 for t in self.terms if isinstance(t, Wildcard))

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.terms) + ")"


_NUM = r"[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
_RANGE_RE = re.compile(rf"^({_NUM}|\*)\s*-\s*({_NUM}|\*)$")
_WORD_RE = re.compile(r"^[A-Za-z]+$")
_PREFIX_RE = re.compile(r"^([A-Za-z]+)\*$")
_NUM_RE = re.compile(rf"^{_NUM}$")


def parse_terms(text: str) -> Query:
    """Parse the paper's textual query syntax into a :class:`Query`.

    >>> parse_terms("(comp*, network)").terms
    (Prefix(prefix='comp'), Exact(value='network'))
    >>> parse_terms("(256-512, *)").terms
    (NumericRange(low=256.0, high=512.0), Wildcard())
    """
    stripped = text.strip()
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1]
    if not stripped.strip():
        raise QueryParseError(f"empty query: {text!r}")
    parts = [p.strip() for p in stripped.split(",")]
    terms: list[Term] = []
    for part in parts:
        terms.append(_parse_term(part, text))
    return Query(tuple(terms))


def _parse_term(part: str, full_text: str) -> Term:
    if not part:
        raise QueryParseError(f"empty term in query {full_text!r}")
    if part == "*":
        return Wildcard()
    match = _RANGE_RE.match(part)
    if match:
        lo_txt, hi_txt = match.groups()
        low = None if lo_txt == "*" else float(lo_txt)
        high = None if hi_txt == "*" else float(hi_txt)
        try:
            return NumericRange(low, high)
        except KeywordError as exc:
            raise QueryParseError(str(exc)) from None
    match = _PREFIX_RE.match(part)
    if match:
        return Prefix(match.group(1).lower())
    if _WORD_RE.match(part):
        return Exact(part.lower())
    if _NUM_RE.match(part):
        return Exact(float(part))
    raise QueryParseError(f"cannot parse term {part!r} in query {full_text!r}")


def _fmt_num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else str(value)
