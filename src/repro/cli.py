"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    List the reproduced figures and their titles.
``run FIGURE [--scale S] [--seed N]``
    Run one figure and print its table.
``report [--scale S] [--figures f1,f2] [--output PATH]``
    Run all figures, check the paper's shape claims, emit markdown.
``demo``
    A 30-second end-to-end demonstration (publish + flexible queries).
``trace QUERY [--engine E] [--nodes N] [--seed S] [--json]``
    Run one query on a small demo system with a tracer attached and print
    the reconstructed refinement tree, the stats, and the metrics snapshot.
``bench [--quick] [--seed N] [--workers N] [--suites s1,s2] [--output PATH]``
    Run the seeded query-hot-path benchmark suites (encode throughput,
    refinement kernel scalar vs. vectorized, end-to-end latency by query
    class, parallel batch execution, resilient execution under faults,
    store backends, skewed trace replay with the result cache) and write
    the versioned JSON document (default ``BENCH_query_path.json``).
    ``--suites`` selects a comma-separated subset (e.g. ``--suites trace``
    for the CI cache smoke leg).
``chaos [--drop-rate R] [--crash-rate R] [--mitigation M] [--assert-complete]``
    Run seeded queries through an injected fault plane and print recall,
    completeness, and retry/failover accounting.  ``--assert-complete``
    exits non-zero unless recall is 1.0 and every result is complete —
    the CI chaos smoke test.
``serve [--port P] [--nodes N] [--docs D] [--engine E] [--max-inflight M]
[--max-backlog B] [--guard]``
    Build a seeded demo system and serve it over HTTP/JSON (POST /query,
    GET /healthz /stats /metrics) on an asyncio transport that multiplexes
    concurrent queries over per-node priority inboxes (see
    ``docs/serving.md``).  ``--max-backlog`` bounds the waiting room
    (excess requests get 429 + Retry-After) and ``--guard`` arms the
    engine with a per-node overload guard plane (see ``docs/overload.md``).
``loadgen [--port P | --self-serve] [--mode open|closed] [--rate R]
[--concurrency C] [--queries N] [--priority CLASS] [--deadline S]
[--guard] [--check | --check-overload]``
    Replay a skewed trace workload against a running server (or a
    self-served one) and report QPS, per-status-code counts, goodput
    (complete in-deadline answers/sec), and p50/p95/p99 latency.
    ``--check`` exits non-zero unless the run was spotless (zero errors,
    zero 429s, finite percentiles) — the CI serve smoke test;
    ``--check-overload`` instead asserts graceful degradation under
    deliberate overload (zero 5xx/hard errors, shed fraction within
    ``--max-shed-fraction``, finite percentiles) — the CI overload smoke.

``run`` and ``report`` accept ``--profile`` to time the hot SFC/engine
phases and print the per-phase table after the run.  ``run``, ``report``,
``replicate``, and ``bench`` accept ``--workers N`` to execute query
batches across N worker processes (results are identical for any N; only
wall-clock time changes).  ``run``, ``bench``, and ``chaos`` accept
``--store {local,columnar,sqlite}`` to select the node-store backend the
systems are built on (results are identical for any backend; only
throughput and memory footprint change — see ``docs/storage.md``),
``--curve {hilbert,zorder,gray,onion,auto}`` to select the space-filling
curve family (answers are identical for any curve; message costs differ —
``auto`` picks the cheapest for a sampled workload, see
``docs/performance.md``), and
``--result-cache N`` to attach an initiator-side result cache of capacity
N to every system built during the command (match sets are identical with
or without it; see ``docs/performance.md`` §7).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Squid (HPDC'03) reproduction: flexible P2P information discovery",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproduced figures")

    run_p = sub.add_parser("run", help="run one figure or extension")
    run_p.add_argument("figure", help="figure id, e.g. fig09 or extA")
    run_p.add_argument("--scale", default="small", choices=["small", "medium", "full"])
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    run_p.add_argument(
        "--profile", action="store_true", help="time hot phases and print the table"
    )
    _add_workers_flag(run_p)
    _add_curve_flag(run_p)
    _add_store_flag(run_p)
    _add_result_cache_flag(run_p)

    repl_p = sub.add_parser("replicate", help="run a figure across several seeds")
    repl_p.add_argument("figure", help="figure id, e.g. fig09")
    repl_p.add_argument("--scale", default="small", choices=["small", "medium", "full"])
    repl_p.add_argument("--seeds", default="1,2,3", help="comma-separated seeds")
    _add_workers_flag(repl_p)

    rep_p = sub.add_parser("report", help="run all figures, emit markdown report")
    rep_p.add_argument("--scale", default="small", choices=["small", "medium", "full"])
    rep_p.add_argument("--figures", default=None, help="comma-separated subset")
    rep_p.add_argument("--output", default=None, help="write report to this path")
    rep_p.add_argument(
        "--profile", action="store_true", help="append a per-phase profile section"
    )
    _add_workers_flag(rep_p)

    sub.add_parser("demo", help="end-to-end demonstration")

    trace_p = sub.add_parser("trace", help="trace one query's refinement tree")
    trace_p.add_argument(
        "query", nargs="?", default="(comp*, *)", help="query string, e.g. '(comp*, *)'"
    )
    trace_p.add_argument(
        "--engine", default="optimized", choices=["optimized", "naive"]
    )
    trace_p.add_argument("--nodes", type=int, default=64)
    trace_p.add_argument("--seed", type=int, default=42)
    trace_p.add_argument(
        "--json", action="store_true", help="emit the trace tree as JSON"
    )

    bench_p = sub.add_parser("bench", help="run the query-hot-path benchmarks")
    bench_p.add_argument(
        "--quick", action="store_true", help="tiny suites (seconds; used by CI smoke)"
    )
    bench_p.add_argument("--seed", type=int, default=42)
    bench_p.add_argument(
        "--suites",
        default=None,
        metavar="s1,s2",
        help="comma-separated suite subset "
        "(encode,refine,e2e,parallel,resilience,store,trace,serve,overload)",
    )
    bench_p.add_argument(
        "--output",
        default="BENCH_query_path.json",
        help="path of the JSON result document",
    )
    _add_workers_flag(bench_p)
    _add_curve_flag(bench_p)
    _add_store_flag(bench_p)
    _add_result_cache_flag(bench_p)

    chaos_p = sub.add_parser(
        "chaos", help="run seeded queries under an injected fault plane"
    )
    chaos_p.add_argument("--nodes", type=int, default=48)
    chaos_p.add_argument("--docs", type=int, default=400)
    chaos_p.add_argument("--queries", type=int, default=8)
    chaos_p.add_argument("--seed", type=int, default=7)
    chaos_p.add_argument("--drop-rate", type=float, default=0.25)
    chaos_p.add_argument("--crash-rate", type=float, default=0.0)
    chaos_p.add_argument("--duplicate-rate", type=float, default=0.0)
    chaos_p.add_argument("--delay-rate", type=float, default=0.0)
    chaos_p.add_argument(
        "--mitigation",
        default="retry+replication",
        choices=["none", "retry", "retry+replication"],
    )
    chaos_p.add_argument(
        "--degree", type=int, default=2, help="replication degree"
    )
    chaos_p.add_argument(
        "--assert-complete",
        action="store_true",
        help="exit 1 unless recall is 1.0 and every result is complete",
    )
    _add_curve_flag(chaos_p)
    _add_store_flag(chaos_p)
    _add_result_cache_flag(chaos_p)

    serve_p = sub.add_parser("serve", help="serve queries over HTTP/JSON")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8642, help="0 binds an ephemeral port"
    )
    serve_p.add_argument("--nodes", type=int, default=64)
    serve_p.add_argument("--docs", type=int, default=2_000)
    serve_p.add_argument("--seed", type=int, default=42)
    serve_p.add_argument(
        "--engine", default="optimized", choices=["optimized", "naive"]
    )
    serve_p.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission bound on concurrent in-flight queries",
    )
    serve_p.add_argument(
        "--max-backlog",
        type=int,
        default=None,
        help="bound on requests waiting for a slot; excess gets 429 "
        "(default: unbounded waiting, the legacy closed-loop behaviour)",
    )
    serve_p.add_argument(
        "--guard",
        action="store_true",
        help="arm the engine with a per-node overload guard plane "
        "(bounded node backlogs; sheds unprotected work honestly)",
    )
    serve_p.add_argument(
        "--inbox-capacity",
        type=int,
        default=128,
        help="bound of each node's asyncio inbox",
    )
    serve_p.add_argument(
        "--per-message-delay",
        type=float,
        default=0.0,
        metavar="S",
        help="simulated per-message wire latency in seconds",
    )
    _add_curve_flag(serve_p)
    _add_store_flag(serve_p)
    _add_result_cache_flag(serve_p)

    lg_p = sub.add_parser(
        "loadgen", help="replay a trace workload against a query server"
    )
    lg_p.add_argument("--host", default="127.0.0.1")
    lg_p.add_argument("--port", type=int, default=None)
    lg_p.add_argument(
        "--self-serve",
        action="store_true",
        help="build a demo system + server in-process (no --port needed)",
    )
    lg_p.add_argument("--queries", type=int, default=200)
    lg_p.add_argument("--mode", default="open", choices=["open", "closed"])
    lg_p.add_argument(
        "--rate", type=float, default=100.0, help="open-loop arrival rate (req/s)"
    )
    lg_p.add_argument("--concurrency", type=int, default=16)
    lg_p.add_argument(
        "--priority",
        default=None,
        choices=["interactive", "batch", "background"],
        help="priority class stamped onto every request (default: server "
        "default, interactive)",
    )
    lg_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="classify 200 answers slower than S seconds as late "
        "(never abandons a request; goodput counts in-deadline answers)",
    )
    lg_p.add_argument("--seed", type=int, default=42)
    lg_p.add_argument("--nodes", type=int, default=64, help="self-serve ring size")
    lg_p.add_argument("--docs", type=int, default=2_000, help="self-serve corpus")
    lg_p.add_argument(
        "--per-message-delay", type=float, default=0.0, metavar="S",
        help="self-serve simulated wire latency in seconds",
    )
    lg_p.add_argument(
        "--guard",
        action="store_true",
        help="self-serve only: arm the engine with the default overload "
        "guard plane (bounded node backlogs, honest shedding)",
    )
    lg_p.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="self-serve only: server admission bound "
        "(default: max(64, concurrency))",
    )
    lg_p.add_argument(
        "--max-backlog",
        type=int,
        default=None,
        help="self-serve only: server waiting-room cap; excess gets 429 "
        "(default: unbounded waiting)",
    )
    lg_p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless zero errors, zero 429s, and finite p50/p95/p99",
    )
    lg_p.add_argument(
        "--check-overload",
        action="store_true",
        help="exit 1 unless degradation was graceful: zero 5xx/hard errors, "
        "shed fraction within --max-shed-fraction, finite percentiles",
    )
    lg_p.add_argument(
        "--max-shed-fraction",
        type=float,
        default=0.5,
        metavar="F",
        help="--check-overload bound on (429s + shed answers) / sent",
    )
    lg_p.add_argument("--json", action="store_true", help="emit the report as JSON")
    _add_curve_flag(lg_p)
    _add_store_flag(lg_p)

    args = parser.parse_args(argv)

    if getattr(args, "workers", None) is not None:
        from repro.exec import set_default_workers

        set_default_workers(args.workers)

    if getattr(args, "store", None) is not None:
        from repro.store import set_default_store

        set_default_store(args.store)

    if getattr(args, "curve", None) is not None:
        from repro.sfc import set_default_curve

        set_default_curve(args.curve)

    if getattr(args, "result_cache", None) is not None:
        from repro.core.resultcache import set_default_result_cache

        set_default_result_cache(args.result_cache)

    if args.command == "figures":
        return _cmd_figures()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replicate":
        return _cmd_replicate(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _add_workers_flag(subparser) -> None:
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for query batches (results identical for any N)",
    )


def _add_curve_flag(subparser) -> None:
    subparser.add_argument(
        "--curve",
        default=None,
        choices=["hilbert", "zorder", "gray", "onion", "auto"],
        help="space-filling-curve family for system construction "
        "(answers identical for any curve; costs differ — 'auto' picks "
        "the cheapest for a sampled workload)",
    )


def _add_store_flag(subparser) -> None:
    subparser.add_argument(
        "--store",
        default=None,
        choices=["local", "columnar", "sqlite"],
        help="node-store backend (default: REPRO_STORE env var or 'local'; "
        "results identical for any backend)",
    )


def _add_result_cache_flag(subparser) -> None:
    subparser.add_argument(
        "--result-cache",
        type=int,
        default=None,
        metavar="N",
        help="attach an initiator-side result cache of capacity N to every "
        "system (match sets identical with or without; see docs/performance.md)",
    )


def _cmd_figures() -> int:
    from repro.experiments import EXTENSIONS, FIGURES
    from repro.experiments.report import _PAPER_CLAIMS

    print("Paper figures:")
    for name in sorted(FIGURES):
        print(f"  {name}: {_PAPER_CLAIMS.get(name, '')}")
    print("Extension experiments:")
    for name in sorted(EXTENSIONS):
        print(f"  {name}: {_PAPER_CLAIMS.get(name, '')}")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments import run_figure

    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.profile:
        from repro.obs import profiling

        with profiling() as profiler:
            result = run_figure(args.figure, **kwargs)
        print(result.to_csv() if args.csv else result.to_text())
        print()
        print(profiler.to_text())
        return 0
    result = run_figure(args.figure, **kwargs)
    print(result.to_csv() if args.csv else result.to_text())
    return 0


def _cmd_replicate(args) -> int:
    from repro.experiments.replicate import replicate_figure

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    result = replicate_figure(args.figure, seeds=seeds, scale=args.scale)
    print(result.to_text())
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    figures = args.figures.split(",") if args.figures else None
    report = generate_report(scale=args.scale, figures=figures, profile=args.profile)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _cmd_demo() -> int:
    from repro import KeywordSpace, SquidSystem, WordDimension

    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)
    system = SquidSystem.create(space, n_nodes=64, seed=42)
    docs = [
        (("computer", "network"), "doc-net"),
        (("computer", "netbook"), "doc-netbook"),
        (("computation", "theory"), "doc-theory"),
        (("database", "network"), "doc-db"),
    ]
    for key, payload in docs:
        system.publish(key, payload=payload)
    print(f"{len(docs)} documents on {len(system.overlay)} peers")
    for query in ["(computer, network)", "(comp*, *)", "(*, net*)"]:
        result = system.query(query, rng=0)
        payloads = sorted(e.payload for e in result.matches)
        print(
            f"{query:24s} -> {payloads} "
            f"[{result.stats.messages} msgs, "
            f"{result.stats.processing_node_count} peers]"
        )
    return 0


def _cmd_trace(args) -> int:
    from repro import KeywordSpace, SquidSystem, WordDimension
    from repro.obs import collecting

    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)
    system = SquidSystem.create(
        space, n_nodes=args.nodes, seed=args.seed, engine=args.engine
    )
    docs = [
        (("computer", "network"), "doc-net"),
        (("computer", "netbook"), "doc-netbook"),
        (("computation", "theory"), "doc-theory"),
        (("database", "network"), "doc-db"),
        (("compiler", "design"), "doc-compiler"),
    ]
    for key, payload in docs:
        system.publish(key, payload=payload)

    system.attach_tracer()
    with collecting() as registry:
        result = system.query(args.query, rng=args.seed)
    assert result.trace is not None
    if args.json:
        print(result.trace.to_json(indent=2))
        return 0
    print(result.trace.render())
    print()
    print("stats:")
    for field, value in sorted(result.stats.as_dict().items()):
        print(f"  {field}: {value}")
    print()
    print("metrics:")
    print(registry.to_text())
    return 0


def _cmd_chaos(args) -> int:
    import numpy as np

    from repro.core.engine import OptimizedEngine
    from repro.core.replication import ReplicationManager
    from repro.core.system import SquidSystem
    from repro.faults import FaultConfig, FaultPlane, RetryPolicy
    from repro.obs import collecting
    from repro.workloads.documents import DocumentWorkload
    from repro.workloads.queries import q1_queries

    gen = np.random.default_rng(args.seed)
    workload = DocumentWorkload.generate(2, args.docs, rng=gen)
    system = SquidSystem.create(
        workload.space, n_nodes=args.nodes, seed=args.seed + 1
    )
    system.publish_many(workload.keys)
    manager = (
        ReplicationManager(system, degree=args.degree)
        if args.mitigation == "retry+replication"
        else None
    )
    plane = FaultPlane(
        FaultConfig(
            drop_rate=args.drop_rate,
            crash_rate=args.crash_rate,
            duplicate_rate=args.duplicate_rate,
            delay_rate=args.delay_rate,
            seed=args.seed + 2,
        )
    )
    plane.attach_system(system, replication=manager)
    engine = OptimizedEngine(
        fault_plane=plane,
        retry=RetryPolicy() if args.mitigation != "none" else None,
        replication=manager,
    )

    queries = [str(q) for q in q1_queries(workload, count=args.queries, rng=args.seed + 3)]
    ids = system.overlay.node_ids()
    recalls = []
    completes = []
    with collecting() as registry:
        for query in queries:
            want = {id(e) for e in system.brute_force_matches(query)}
            origin = ids[int(gen.integers(0, len(ids)))]
            res = engine.execute(system, query, origin=origin, rng=gen)
            got = {id(e) for e in res.matches}
            recall = len(got & want) / len(want) if want else 1.0
            recalls.append(recall)
            completes.append(res.complete)
            unresolved = (
                f" unresolved={len(res.unresolved_ranges)}r/{res.unresolved_span}i"
                if res.unresolved_ranges
                else ""
            )
            print(
                f"{query:28s} recall={recall:.3f} complete={res.complete} "
                f"msgs={res.stats.messages} retries={res.stats.retries} "
                f"failovers={res.stats.failovers}"
                f"{unresolved}"
            )
    mean_recall = sum(recalls) / len(recalls)
    all_complete = all(completes)
    fs = plane.stats
    print(
        f"\nmitigation={args.mitigation} drop={args.drop_rate} "
        f"crash={args.crash_rate}: mean recall {mean_recall:.3f}, "
        f"{sum(completes)}/{len(completes)} complete"
    )
    print(
        f"fault plane: {fs.messages} transmissions, {fs.dropped} dropped, "
        f"{fs.crashed} crashed, {fs.duplicated} duplicated, {fs.delayed} delayed"
    )
    faults_metrics = {
        name: value
        for name, value in sorted(registry.snapshot()["counters"].items())
        if name.startswith(("faults.", "query.retries", "query.failovers",
                            "query.lost_branches"))
    }
    if faults_metrics:
        print("metrics: " + ", ".join(f"{k}={v}" for k, v in faults_metrics.items()))
    if args.assert_complete and not (mean_recall == 1.0 and all_complete):
        print("FAIL: expected recall 1.0 with every result complete")
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.net import QueryServer, build_demo_system

    engine = args.engine
    if args.guard:
        from repro.core.engine import make_engine
        from repro.guard import GuardConfig, GuardPlane
        from repro.net.loadgen import DEFAULT_GUARD_KWARGS

        engine = make_engine(
            args.engine, guard=GuardPlane(GuardConfig(**DEFAULT_GUARD_KWARGS))
        )
    system = build_demo_system(
        seed=args.seed, n_nodes=args.nodes, n_docs=args.docs, engine=engine
    )

    async def _serve() -> None:
        server = QueryServer(
            system,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_backlog=args.max_backlog,
            inbox_capacity=args.inbox_capacity,
            per_message_delay=args.per_message_delay,
        )
        await server.start()
        print(
            f"serving {len(system.overlay)} nodes / {args.docs} docs "
            f"on http://{server.host}:{server.port} "
            f"(engine={args.engine}, max_inflight={args.max_inflight}, "
            f"max_backlog={args.max_backlog}, guard={args.guard})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.errors import ServingError
    from repro.net import run_loadgen

    try:
        report = run_loadgen(
            host=args.host,
            port=args.port,
            queries=args.queries,
            mode=args.mode,
            rate=args.rate,
            concurrency=args.concurrency,
            seed=args.seed,
            self_serve=args.self_serve,
            nodes=args.nodes,
            docs=args.docs,
            per_message_delay=args.per_message_delay,
            priority=args.priority,
            deadline=args.deadline,
            guard=args.guard,
            max_inflight=args.max_inflight,
            max_backlog=args.max_backlog,
            check=args.check,
            check_overload=args.check_overload,
            max_shed_fraction=args.max_shed_fraction,
        )
    except ServingError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(json.dumps(report.as_dict(), indent=2) if args.json else report.render())
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import render_summary, run_bench, write_bench_json

    suites = (
        [s.strip() for s in args.suites.split(",") if s.strip()]
        if args.suites
        else None
    )
    result = run_bench(
        seed=args.seed, quick=args.quick, workers=args.workers, suites=suites
    )
    write_bench_json(result, args.output)
    print(render_summary(result))
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

