"""Bit-manipulation primitives used by the space-filling-curve machinery.

These helpers operate on arbitrary-precision Python integers so curves of any
dimensionality/order are supported; the vectorized NumPy fast path lives in
:mod:`repro.sfc.hilbert_vec` and mirrors the same definitions.

Conventions
-----------
* ``width``-bit values are unsigned and live in ``[0, 2**width)``.
* Rotations are *cyclic within the low ``width`` bits*; bits above ``width``
  must be zero on input and are zero on output.
* Bit ``i`` of a coordinate label refers to dimension ``i`` (LSB = dim 0),
  matching the Hamilton compact-Hilbert formulation used in
  :mod:`repro.sfc.hilbert`.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "bit_mask",
    "gray_encode",
    "gray_decode",
    "rotate_left",
    "rotate_right",
    "trailing_set_bits",
    "trailing_zero_bits",
    "bit_at",
    "set_bit",
    "popcount",
    "bit_length_ceil",
    "extract_dim_bits",
    "interleave_bits",
    "deinterleave_bits",
    "iter_bits_msb",
    "reverse_bits",
]


def bit_mask(width: int) -> int:
    """Return a mask with the low ``width`` bits set.

    >>> bin(bit_mask(4))
    '0b1111'
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``.

    >>> [gray_encode(i) for i in range(4)]
    [0, 1, 3, 2]
    """
    if value < 0:
        raise ValueError("gray_encode requires a non-negative integer")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`.

    Implemented as a prefix-XOR with logarithmic number of shifts.
    """
    if code < 0:
        raise ValueError("gray_decode requires a non-negative integer")
    value = code
    shift = 1
    # Prefix XOR of the *accumulated* value: doubling shift converges in
    # O(log bits) steps because each pass folds in twice as many bits.
    while (value >> shift) > 0:
        value ^= value >> shift
        shift <<= 1
    return value


def rotate_left(value: int, count: int, width: int) -> int:
    """Cyclically rotate the low ``width`` bits of ``value`` left by ``count``."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    count %= width
    if count == 0:
        return value
    mask = bit_mask(width)
    return ((value << count) | (value >> (width - count))) & mask


def rotate_right(value: int, count: int, width: int) -> int:
    """Cyclically rotate the low ``width`` bits of ``value`` right by ``count``."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return rotate_left(value, width - (count % width), width)


def trailing_set_bits(value: int) -> int:
    """Number of consecutive 1-bits at the least-significant end.

    >>> trailing_set_bits(0b0111)
    3
    >>> trailing_set_bits(0b0100)
    0
    """
    if value < 0:
        raise ValueError("trailing_set_bits requires a non-negative integer")
    count = 0
    while value & 1:
        count += 1
        value >>= 1
    return count


def trailing_zero_bits(value: int) -> int:
    """Number of consecutive 0-bits at the least-significant end.

    ``value`` must be positive (the count is unbounded for zero).
    """
    if value <= 0:
        raise ValueError("trailing_zero_bits requires a positive integer")
    return (value & -value).bit_length() - 1


def bit_at(value: int, position: int) -> int:
    """Return bit ``position`` (LSB = 0) of ``value`` as 0 or 1."""
    return (value >> position) & 1


def set_bit(value: int, position: int, bit: int) -> int:
    """Return ``value`` with bit ``position`` forced to ``bit`` (0 or 1)."""
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    mask = 1 << position
    return (value | mask) if bit else (value & ~mask)


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError("popcount requires a non-negative integer")
    return bin(value).count("1")


def bit_length_ceil(value: int) -> int:
    """Smallest ``k`` such that ``value < 2**k`` (0 for value == 0)."""
    if value < 0:
        raise ValueError("bit_length_ceil requires a non-negative integer")
    return value.bit_length()


def extract_dim_bits(index: int, dim: int, dims: int, order: int) -> int:
    """Extract the ``order`` bits of dimension ``dim`` from a Morton index.

    The Morton (Z-order) index interleaves coordinate bits MSB-first with
    dimension 0 occupying the most significant bit of each ``dims``-bit group.
    """
    coord = 0
    for level in range(order):
        group_shift = (order - 1 - level) * dims
        bit = (index >> (group_shift + dims - 1 - dim)) & 1
        coord = (coord << 1) | bit
    return coord


def interleave_bits(coords: tuple[int, ...], order: int) -> int:
    """Morton-interleave ``coords`` (each ``order`` bits) into one integer.

    Dimension 0 contributes the most significant bit of each level group,
    i.e. ``interleave_bits((x, y), k)`` produces ``x_k y_k x_{k-1} y_{k-1} ...``.
    """
    dims = len(coords)
    index = 0
    for level in range(order - 1, -1, -1):
        for dim, coord in enumerate(coords):
            index = (index << 1) | ((coord >> level) & 1)
    return index


def deinterleave_bits(index: int, dims: int, order: int) -> tuple[int, ...]:
    """Inverse of :func:`interleave_bits`."""
    return tuple(extract_dim_bits(index, dim, dims, order) for dim in range(dims))


def iter_bits_msb(value: int, width: int) -> Iterator[int]:
    """Yield the low ``width`` bits of ``value`` from most significant down."""
    for position in range(width - 1, -1, -1):
        yield (value >> position) & 1


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
