"""Small statistics helpers shared by experiments and load-balancing code.

These are deliberately dependency-light (NumPy only) and operate on plain
sequences of numbers so both the simulator and the experiment harness can use
them without conversions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "gini_coefficient",
    "imbalance_ratio",
    "coefficient_of_variation",
    "histogram_counts",
    "percentile",
    "percentiles",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    total: float
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Return the summary as a flat dict (for table printing)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values`` (empty input yields zeros)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(arr.size),
        total=float(arr.sum()),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = even, → 1 = concentrated).

    Used to quantify load imbalance across peers: the paper's Figure 19 shows
    load distributions; the Gini gives a single scalar for assertions.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Standard formulation via the sorted-sample index weights.
    weights = np.arange(1, n + 1, dtype=float)
    return float((2.0 * np.dot(weights, arr) / (n * total)) - (n + 1.0) / n)


def imbalance_ratio(values: Sequence[float]) -> float:
    """Max load divided by mean load (1.0 = perfectly even)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 1.0
    mean = arr.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation over mean (0 = perfectly even)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)


def histogram_counts(
    values: Sequence[float], bins: int, low: float, high: float
) -> np.ndarray:
    """Counts of ``values`` over ``bins`` equal-width intervals of [low, high).

    This mirrors the paper's Figure 18 (index space partitioned into 500
    intervals, counting keys per interval).
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    if high <= low:
        raise ValueError("high must exceed low")
    counts, _ = np.histogram(np.asarray(values, dtype=float), bins=bins, range=(low, high))
    return counts


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` (0-100) of ``values``; 0.0 for an empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> dict[str, float]:
    """Named percentiles of a sample: ``{"p50": ..., "p95": ..., "p99": ...}``.

    The single shared implementation behind the bench harness tables and the
    load generator's latency report.  An empty sample yields ``nan`` for
    every quantile — unlike :func:`percentile`'s 0.0, because a latency
    report must not present "no data" as "instant" (the load generator's
    ``--check`` mode asserts the values are finite).
    """
    labels = [f"p{int(q) if float(q).is_integer() else q}" for q in qs]
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return {label: float("nan") for label in labels}
    points = np.percentile(arr, list(qs))
    return {label: float(point) for label, point in zip(labels, points)}
