"""Seeded randomness helpers.

Every stochastic component in the library accepts either an integer seed or a
preconstructed :class:`numpy.random.Generator`; this module centralizes the
coercion so experiments stay reproducible end-to-end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomLike", "as_generator", "spawn"]

RandomLike = Union[int, np.random.Generator, None]


def as_generator(rng: RandomLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a new
    PCG64 generator, and an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn(rng: RandomLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are statistically independent streams, so parallel workload
    generators do not share state.
    """
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
