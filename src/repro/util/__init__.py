"""Shared utilities: bit manipulation, statistics, seeded randomness."""

from repro.util import bits, rng, stats

__all__ = ["bits", "rng", "stats"]
