"""Transports: message delivery decoupled from engine logic.

The engines in :mod:`repro.core.engine` expose a delivery-agnostic run API —
:meth:`~repro.core.engine.QueryEngine.begin_run` posts work entries into an
:class:`~repro.core.engine.EngineRun` outbox,
:meth:`~repro.core.engine.QueryEngine.process_message` handles one delivered
entry (posting follow-ups), and
:meth:`~repro.core.engine.QueryEngine.finish_run` seals the result.  A
*transport* owns everything in between: where each posted entry travels,
when it arrives, and what runs concurrently.

Two implementations:

:class:`SyncTransport`
    The original single-process simulation: every run is pumped to
    completion in FIFO post order (:func:`repro.core.engine.drive_sync`)
    before ``submit`` returns.  Zero concurrency, zero overhead — the
    reference behaviour.

:class:`AsyncioTransport`
    Real concurrent delivery.  Every overlay node gets a bounded
    :class:`asyncio.Queue` inbox drained by a worker task; work entries are
    wrapped in ``(qid, seq, entry)`` envelopes where ``qid`` is the query
    correlation id and ``seq`` the per-run post sequence number.  Many
    queries are in flight at once — their messages interleave freely in the
    node inboxes — yet each individual run processes its entries in exact
    ``seq`` order, which is the FIFO post order :func:`drive_sync` uses.
    **A run therefore computes bit-identical matches, stats, and traces
    over either transport**; concurrency changes only wall-clock time (and
    shared-cache hit flags, which depend on arrival order across runs).

    ``per_message_delay`` simulates network latency: each delivery sleeps
    in the *node's* worker, so deliveries to distinct nodes overlap while a
    single node serializes its inbox — the concurrency profile of one
    event-loop thread per peer.

    Inboxes are **priority queues**: each envelope carries its run's
    priority rank (``interactive`` < ``batch`` < ``background``, see
    :mod:`repro.guard`), and a node drains lower ranks first.  A global
    monotone tiebreaker preserves exact FIFO order among equal ranks, so a
    uniform-priority workload is byte-for-byte the plain-queue behaviour.
    When the engine carries an armed :class:`~repro.guard.GuardPlane`, the
    transport feeds its backlog accounting: every enqueue calls
    ``note_posted`` and every envelope is either admitted by the engine's
    ``process_message`` or explicitly abandoned (stale deliveries,
    discovery-stop leftovers), keeping the per-node pending gauge exact.

Both transports mirror :meth:`SquidSystem.query`'s result-cache fast path,
so a served query hits the same initiator-side cache a local call would.

Deadlock freedom (the classic bounded-mailbox pitfall): node workers never
*put* — they only pop an envelope, optionally sleep, and park it in the
destination run's reorder buffer.  All puts happen in the run's driver
coroutine, which a draining worker always unblocks eventually.
"""

from __future__ import annotations

import asyncio
import itertools
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.engine import drive_sync
from repro.core.metrics import QueryResult, QueryStats
from repro.core.resultcache import result_key
from repro.errors import EngineError
from repro.util.rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import EngineRun, QueryEngine
    from repro.core.system import SquidSystem

__all__ = ["Transport", "SyncTransport", "AsyncioTransport"]


class Transport(ABC):
    """Delivery strategy for one system + engine pair.

    ``engine`` accepts the same values as :meth:`SquidSystem.query`'s
    ``engine=`` parameter (instance, registry name, or None for the
    system's default).
    """

    def __init__(self, system: "SquidSystem", engine=None) -> None:
        self.system = system
        self.engine: "QueryEngine" = system._coerce_engine(engine)
        #: Queries answered through :meth:`submit` (cache hits included).
        self.queries_served = 0

    async def start(self) -> "Transport":
        """Bring the transport up (idempotent); returns ``self``."""
        return self

    async def close(self) -> None:
        """Tear the transport down; outstanding runs are abandoned."""

    async def __aenter__(self) -> "Transport":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @abstractmethod
    async def submit(
        self,
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        """Resolve one query over this transport; see :meth:`SquidSystem.query`."""

    def _guard_plane(self):
        """The engine's *armed* guard plane, or None (mirrors ``run.guard``)."""
        guard = getattr(self.engine, "guard", None)
        if guard is not None and guard.active:
            return guard
        return None

    # ------------------------------------------------------------------
    # Result-cache fast path (mirrors SquidSystem.query exactly)
    # ------------------------------------------------------------------
    def _cache_probe(self, query, limit):
        """Return ``(hit, key, region)``: a cached result, or the put key."""
        system = self.system
        cache = system.result_cache
        if cache is None or limit is not None:
            return None, None, None
        params = self.engine.result_cache_params()
        if params is None:
            return None, None, None
        q = system.space.as_query(query)
        region = system.space.region(q)
        key = result_key(system.curve, region, self.engine.name, params, query=q)
        cached = cache.get(key)
        if cached is not None:
            hit = QueryResult(
                q,
                list(cached),
                QueryStats(result_cache_hit=True),
                None,
                complete=True,
            )
            return hit, key, region
        return None, key, region

    def _cache_store(self, key, region, result: QueryResult) -> None:
        if key is not None:
            self.system.result_cache.put(key, result, self.system.curve, region)

    def _request_rng(self, rng: RandomLike):
        return rng if rng is not None else self.system._rng


class SyncTransport(Transport):
    """Synchronous in-process delivery — the original simulation order.

    ``submit`` runs the whole query to completion before returning (no
    await points inside the run), so results are exactly those of
    :meth:`SquidSystem.query` on the same system.
    """

    async def submit(
        self,
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        hit, key, region = self._cache_probe(query, limit)
        if hit is not None:
            self.queries_served += 1
            return hit
        run = self.engine.begin_run(
            self.system, query, origin=origin,
            rng=self._request_rng(rng), limit=limit, priority=priority,
        )
        result = drive_sync(self.engine, self.system, run)
        self._cache_store(key, region, result)
        self.queries_served += 1
        return result


class _RunState:
    """Reorder buffer + accounting for one in-flight query run."""

    __slots__ = ("run", "buffer", "ready", "next_seq", "next_to_process", "pending")

    def __init__(self, run: "EngineRun") -> None:
        self.run = run
        #: Delivered-but-not-yet-processed entries, keyed by post sequence.
        self.buffer: dict[int, object] = {}
        #: Signalled by node workers whenever the buffer gains an entry.
        self.ready = asyncio.Event()
        #: Next sequence number to assign to a posted entry.
        self.next_seq = 0
        #: Next sequence number the driver will process.
        self.next_to_process = 0
        #: Entries posted but not yet processed (in an inbox or the buffer).
        self.pending = 0


class AsyncioTransport(Transport):
    """Concurrent delivery over per-node asyncio inboxes.

    Parameters
    ----------
    inbox_capacity:
        Bound of each node's inbox queue.  A full inbox backpressures the
        posting run's driver (its ``put`` awaits) without ever blocking a
        node worker, so small capacities throttle fan-out but cannot
        deadlock.
    per_message_delay:
        Seconds each delivery spends "on the wire" (slept in the receiving
        node's worker).  0.0 measures pure protocol overhead; a small
        positive value makes concurrency measurable on a single core.
    """

    def __init__(
        self,
        system: "SquidSystem",
        engine=None,
        *,
        inbox_capacity: int = 128,
        per_message_delay: float = 0.0,
    ) -> None:
        super().__init__(system, engine)
        if inbox_capacity < 1:
            raise EngineError(f"inbox_capacity must be >= 1, got {inbox_capacity}")
        if per_message_delay < 0:
            raise EngineError(
                f"per_message_delay must be >= 0, got {per_message_delay}"
            )
        self.inbox_capacity = int(inbox_capacity)
        self.per_message_delay = float(per_message_delay)
        #: Envelopes delivered to a live run's reorder buffer.
        self.messages_delivered = 0
        #: Envelopes dropped because their run had already finished
        #: (discovery-mode early stop abandons queued entries).
        self.messages_stale = 0
        self._inboxes: dict[int, asyncio.PriorityQueue] = {}
        self._workers: dict[int, asyncio.Task] = {}
        self._runs: dict[int, _RunState] = {}
        self._qids = itertools.count()
        #: Global enqueue tiebreaker: keeps equal-rank envelopes in exact
        #: FIFO order through the priority queues.
        self._order = itertools.count()
        self._started = False

    @property
    def inflight(self) -> int:
        """Number of query runs currently in flight."""
        return len(self._runs)

    async def start(self) -> "AsyncioTransport":
        self._started = True
        for node_id in self.system.overlay.node_ids():
            self._ensure_inbox(node_id)
        return self

    async def close(self) -> None:
        for task in self._workers.values():
            task.cancel()
        for task in self._workers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._inboxes.clear()
        self._runs.clear()
        self._started = False

    # ------------------------------------------------------------------
    # Node mailboxes
    # ------------------------------------------------------------------
    def _ensure_inbox(self, node_id: int) -> asyncio.PriorityQueue:
        """The node's inbox, created lazily (nodes may join after start).

        Inboxes outlive crashes — like a network buffer, a mailbox keeps
        accepting envelopes for a dead peer; the engine's crashed-processor
        redelivery logic reroutes them when they are processed.
        """
        box = self._inboxes.get(node_id)
        if box is None:
            if not self._started:
                raise EngineError("AsyncioTransport used before start()")
            box = self._inboxes[node_id] = asyncio.PriorityQueue(
                maxsize=self.inbox_capacity
            )
            self._workers[node_id] = asyncio.ensure_future(
                self._node_worker(node_id, box)
            )
        return box

    async def _node_worker(self, node_id: int, box: asyncio.PriorityQueue) -> None:
        """Drain one node's inbox into the destination runs' buffers.

        Lower ranks (interactive) are popped ahead of higher ones; the
        global enqueue counter breaks rank ties in FIFO order.  Workers
        never block on a put (see module docstring): pop, simulate the wire
        delay, park the entry, signal the run's driver.  A stale envelope —
        its run already finished — is dropped, and the armed guard plane
        (if any) is told so its pending gauge for this node stays exact.
        """
        delay = self.per_message_delay
        while True:
            _rank, _order, qid, seq, entry = await box.get()
            if delay:
                await asyncio.sleep(delay)
            state = self._runs.get(qid)
            if state is None:
                self.messages_stale += 1
                guard = self._guard_plane()
                if guard is not None:
                    guard.note_abandoned(node_id)
                continue
            state.buffer[seq] = entry
            state.ready.set()
            self.messages_delivered += 1

    # ------------------------------------------------------------------
    # Query runs
    # ------------------------------------------------------------------
    async def submit(
        self,
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        if not self._started:
            await self.start()
        hit, key, region = self._cache_probe(query, limit)
        if hit is not None:
            self.queries_served += 1
            return hit
        run = self.engine.begin_run(
            self.system, query, origin=origin,
            rng=self._request_rng(rng), limit=limit, priority=priority,
        )
        qid = next(self._qids)
        state = _RunState(run)
        self._runs[qid] = state
        try:
            await self._post(state, qid, run)
            result = await self._drive(state, qid, run)
        finally:
            # Deregister before any leftover envelope is popped: workers
            # drop envelopes of unknown runs (abandoned discovery-mode
            # branches), so nothing leaks into a later run with this qid.
            self._runs.pop(qid, None)
        self._cache_store(key, region, result)
        self.queries_served += 1
        return result

    async def _post(self, state: _RunState, qid: int, run: "EngineRun") -> None:
        """Envelope and enqueue everything the engine just posted.

        Envelopes lead with the run's priority rank so node inboxes drain
        interactive work first; the guard plane (when armed) is told about
        every enqueue so per-node backlog is observable before admission.
        """
        engine = self.engine
        guard = run.guard
        rank = run.priority
        for entry in run.take_outbox():
            seq = state.next_seq
            state.next_seq += 1
            state.pending += 1
            dest = engine.entry_node(run, entry)
            if guard is not None:
                guard.note_posted(dest)
            await self._ensure_inbox(dest).put(
                (rank, next(self._order), qid, seq, entry)
            )

    async def _drive(
        self, state: _RunState, qid: int, run: "EngineRun"
    ) -> QueryResult:
        """Process delivered entries in post (seq) order until none remain.

        The strict ordering is what buys transport-independence: the engine
        observes exactly the entry sequence :func:`drive_sync` would feed
        it, so matches/stats/trace/RNG consumption are identical — only the
        interleaving *between* runs differs.
        """
        engine, system = self.engine, self.system
        while state.pending:
            entry = state.buffer.pop(state.next_to_process, None)
            if entry is None:
                state.ready.clear()
                if state.next_to_process in state.buffer:
                    continue  # delivered between the pop and the clear
                await state.ready.wait()
                continue
            state.next_to_process += 1
            state.pending -= 1
            if not engine.process_message(system, run, entry):
                # Discovery-mode stop: the entries still pending are the
                # abandoned in-flight branches drive_sync would count.
                run.stats.aborted_in_flight = state.pending
                guard = run.guard
                if guard is not None:
                    # Buffered-but-unprocessed entries are abandoned here;
                    # leftovers still in inboxes are handed back by the
                    # node workers when they pop the stale envelopes.
                    for buffered in state.buffer.values():
                        guard.note_abandoned(engine.entry_node(run, buffered))
                break
            await self._post(state, qid, run)
        return engine.finish_run(system, run)
