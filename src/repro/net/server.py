"""Asyncio query server: a thin HTTP/JSON front-end over a transport.

:class:`QueryServer` accepts HTTP/1.1 keep-alive connections on a plain
``asyncio.start_server`` socket (no web framework — the standard library is
the dependency budget) and multiplexes every in-flight request over one
shared :class:`~repro.net.transport.AsyncioTransport`.  Because the
transport preserves per-run message order, a served answer is bit-identical
to the same query resolved in process by :meth:`SquidSystem.query` — the
bench ``serve`` suite asserts exactly that through
:func:`encode_result`.

Routes
------
``POST /query``
    Body ``{"query": str, "origin"?: int, "limit"?: int, "seed"?: int,
    "priority"?: str|int}``.  ``origin`` pins the entry node; ``seed``
    derives the request's RNG (so origin selection is reproducible
    regardless of what else is in flight); ``priority`` is a
    :data:`~repro.guard.PRIORITIES` class name or rank (default
    interactive) threaded through to the engine and the transport's
    priority inboxes.  Response: ``{"result": <encode_result>,
    "stats": {...}}``.
``GET /healthz``
    Liveness plus ring size.
``GET /stats``
    Server counters and transport accounting (inflight, delivered, stale).
``GET /metrics``
    Snapshot of the active metrics registry (``{}`` when none is active).

Admission control is a semaphore (``max_inflight``) plus an honest front
door: with ``max_backlog`` set, at most that many requests may *wait* for
an execution slot — any further arrival is refused immediately with
``429 Too Many Requests`` and a ``Retry-After`` header instead of queueing
without bound.  Refusals are counted in :attr:`QueryServer.rejected`,
separately from ``errors`` (a 429 is the server protecting itself, not a
bad request).  ``class_quotas`` additionally caps how many requests of a
given priority class may occupy the front door at once, so background
floods cannot starve interactive traffic out of the backlog.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError, ServingError
from repro.guard.plane import priority_name, priority_rank
from repro.net.transport import AsyncioTransport, Transport
from repro.obs import metrics as obs_metrics
from repro.util.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import QueryResult
    from repro.core.system import SquidSystem

__all__ = ["QueryServer", "encode_result", "read_http_request", "read_http_response"]

_MAX_REQUEST_BODY = 1 << 20  # 1 MiB of JSON is already a hostile query


def encode_result(result: "QueryResult") -> dict[str, Any]:
    """The JSON *answer* of a query: matches plus completeness.

    This is the serving layer's wire contract and the unit of the bench
    suite's bit-identity guard — it deliberately excludes :class:`QueryStats`
    (cost varies with shared-cache state and concurrency; the answer must
    not).  Matches keep engine order, which both transports reproduce.
    """
    return {
        "query": str(result.query),
        "matches": [
            {"index": int(e.index), "key": list(e.key), "payload": e.payload}
            for e in result.matches
        ],
        "complete": bool(result.complete),
        "unresolved_ranges": [
            [int(lo), int(hi)] for lo, hi in result.unresolved_ranges
        ],
    }


async def read_http_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line or line in (b"\r\n", b"\n"):
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise ServingError(f"malformed request line: {line!r}")
    method, path = parts[0].upper(), parts[1]
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers)
    return method, path, headers, body


async def read_http_response(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 response into ``(status_code, headers, body)``."""
    line = await reader.readline()
    if not line:
        raise ServingError("connection closed before response")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServingError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers)
    return status, headers, body


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return headers
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()


async def _read_body(reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
    length = int(headers.get("content-length") or 0)
    if length < 0 or length > _MAX_REQUEST_BODY:
        raise ServingError(f"unreasonable content-length {length}")
    return await reader.readexactly(length) if length else b""


class QueryServer:
    """Serve Squid queries over HTTP/JSON from one shared transport.

    ``port=0`` (the default) binds an ephemeral port; read the bound value
    from :attr:`port` after :meth:`start`.  A custom ``transport`` may be
    injected (e.g. a :class:`~repro.net.transport.SyncTransport` for
    debugging); by default an :class:`AsyncioTransport` is built from the
    system/engine with the given tuning knobs.

    ``max_backlog=None`` (the default) keeps the legacy closed-loop
    behaviour: requests over ``max_inflight`` wait for a slot however long
    it takes.  Setting it bounds the waiting room — the overload-protection
    posture for open-loop traffic (see module docstring).
    """

    def __init__(
        self,
        system: "SquidSystem",
        engine=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        transport: Transport | None = None,
        max_inflight: int = 64,
        max_backlog: int | None = None,
        class_quotas: dict | None = None,
        retry_after: int = 1,
        inbox_capacity: int = 128,
        per_message_delay: float = 0.0,
    ) -> None:
        if max_inflight < 1:
            raise ServingError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_backlog is not None and max_backlog < 0:
            raise ServingError(f"max_backlog must be >= 0, got {max_backlog}")
        if retry_after < 1:
            raise ServingError(f"retry_after must be >= 1, got {retry_after}")
        self.system = system
        self.transport = transport if transport is not None else AsyncioTransport(
            system,
            engine,
            inbox_capacity=inbox_capacity,
            per_message_delay=per_message_delay,
        )
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_backlog = max_backlog
        self.retry_after = int(retry_after)
        #: Per-class front-door occupancy caps, keyed by priority name;
        #: validated eagerly so a typo fails at construction time.
        self.class_quotas: dict[str, int] = {}
        if class_quotas:
            for name, quota in class_quotas.items():
                canonical = priority_name(name)
                if quota < 0:
                    raise ServingError(
                        f"class quota for {canonical!r} must be >= 0, got {quota}"
                    )
                self.class_quotas[canonical] = int(quota)
        #: HTTP requests accepted / failed (4xx responses count as errors).
        self.requests = 0
        self.errors = 0
        #: Requests refused with 429 (overload shedding at the front door);
        #: deliberately *not* part of ``errors``.
        self.rejected = 0
        #: Requests currently waiting for an execution slot.
        self.waiting = 0
        self._class_occupancy: dict[str, int] = {}
        self._sem = asyncio.Semaphore(max_inflight)
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the socket (resolving an ephemeral port) and start serving."""
        await self.transport.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.transport.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServingError("QueryServer.serve_forever before start()")
        await self._server.serve_forever()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except (ServingError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._route(method, path, body)
                data = json.dumps(payload, sort_keys=True, default=str).encode()
                head = (
                    b"HTTP/1.1 " + status + b"\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(data)).encode() + b"\r\n"
                )
                for name, value in extra.items():
                    head += name.encode("latin-1") + b": " + value.encode("latin-1") + b"\r\n"
                writer.write(head + b"\r\n" + data)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[bytes, dict[str, Any], dict[str, str]]:
        if method == "GET" and path == "/healthz":
            return b"200 OK", {
                "status": "ok",
                "nodes": len(self.system.overlay),
                "queries_served": self.transport.queries_served,
            }, {}
        if method == "GET" and path == "/stats":
            return b"200 OK", self.stats(), {}
        if method == "GET" and path == "/metrics":
            reg = obs_metrics.active()
            return b"200 OK", (dict(reg.snapshot()) if reg is not None else {}), {}
        if method == "POST" and path == "/query":
            return await self._handle_query(body)
        return b"404 Not Found", {"error": f"no route {method} {path}"}, {}

    def _reject(self, reason: str) -> tuple[bytes, dict[str, Any], dict[str, str]]:
        """Refuse a request at the front door: 429 + Retry-After, no queueing."""
        self.rejected += 1
        return (
            b"429 Too Many Requests",
            {"error": reason, "retry_after": self.retry_after},
            {"Retry-After": str(self.retry_after)},
        )

    async def _handle_query(
        self, body: bytes
    ) -> tuple[bytes, dict[str, Any], dict[str, str]]:
        self.requests += 1
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict) or "query" not in payload:
                raise ServingError('body must be a JSON object with a "query"')
            query = payload["query"]
            origin = payload.get("origin")
            limit = payload.get("limit")
            seed = payload.get("seed")
            priority = priority_name(payload.get("priority"))
            rng = as_generator(seed) if seed is not None else None
        except (UnicodeDecodeError, json.JSONDecodeError, ReproError) as exc:
            self.errors += 1
            return b"400 Bad Request", {"error": str(exc)}, {}
        quota = self.class_quotas.get(priority)
        if quota is not None and self._class_occupancy.get(priority, 0) >= quota:
            return self._reject(f"class {priority!r} quota ({quota}) exhausted")
        if (
            self.max_backlog is not None
            and self._sem.locked()
            and self.waiting >= self.max_backlog
        ):
            return self._reject(
                f"backlog full ({self.waiting} waiting, cap {self.max_backlog})"
            )
        self._class_occupancy[priority] = self._class_occupancy.get(priority, 0) + 1
        self.waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self.waiting -= 1
        try:
            result = await self.transport.submit(
                query, origin=origin, rng=rng, limit=limit, priority=priority
            )
        except ReproError as exc:
            # A bad query/origin is the client's fault, not the server's.
            self.errors += 1
            return b"400 Bad Request", {"error": str(exc)}, {}
        finally:
            self._sem.release()
            self._class_occupancy[priority] -= 1
        return b"200 OK", {
            "result": encode_result(result),
            "stats": result.stats.as_dict(),
        }, {}

    def stats(self) -> dict[str, Any]:
        """Server + transport counters (the ``/stats`` payload)."""
        transport = self.transport
        out = {
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "waiting": self.waiting,
            "max_inflight": self.max_inflight,
            "max_backlog": self.max_backlog,
            "queries_served": transport.queries_served,
            "nodes": len(self.system.overlay),
        }
        if isinstance(transport, AsyncioTransport):
            out.update(
                inflight=transport.inflight,
                messages_delivered=transport.messages_delivered,
                messages_stale=transport.messages_stale,
            )
        return out
