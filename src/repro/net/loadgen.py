"""Load generator for the query server: open-loop and closed-loop modes.

*Open loop* is the honest way to measure a service's latency: request ``i``
is *scheduled* at ``t0 + i/rate`` regardless of whether earlier requests
have finished, and its latency is measured **from the scheduled instant** —
so when the server falls behind, the queueing delay lands in the tail
percentiles instead of silently slowing the offered load (coordinated
omission).  *Closed loop* is the throughput probe: ``concurrency`` workers
fire back-to-back, measuring per-request service time and aggregate QPS.

Both modes drive a pool of keep-alive :class:`~repro.net.client.QueryClient`
connections, reuse the shared :func:`repro.util.stats.percentiles` helper
for the latency report, and can replay any request list — by default the
skewed :func:`repro.net.demo.demo_requests` trace built on
:mod:`repro.workloads.trace`.

The report is overload-aware: every response is tallied **per HTTP status
code** (a ``429`` the server shed at the front door is counted as
``rejected``, not as an error), answers with ``complete=False`` (engine-side
load shedding) are counted as ``shed_answers``, and a ``deadline`` only
*classifies* 200 responses as late — the generator never abandons a request,
so percentiles stay honest.  **Goodput** is the useful-work rate: complete,
in-deadline 200 answers per second.  An unguarded server under overload
keeps answering but late (high p99, low goodput); a guarded one fails fast
and sheds honestly (bounded p99, higher goodput) — the bench ``overload``
suite measures exactly this trade.

:func:`run_loadgen` is the synchronous entry point behind
``python -m repro loadgen``; with ``self_serve=True`` it builds a seeded
demo system, starts a server on an ephemeral port, and points the generator
at it — the CI smoke legs (clean run via :meth:`LoadReport.check`, overload
run via :meth:`LoadReport.check_overload`).  ``guard=True`` arms the
self-served engine with a :class:`~repro.guard.GuardPlane` and bounds the
server's backlog, turning the smoke into an end-to-end overload-protection
exercise.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.errors import ServingError
from repro.net.client import QueryClient
from repro.net.demo import build_demo_system, demo_requests
from repro.util.stats import percentiles

__all__ = ["LoadReport", "run_pool", "run_loadgen"]

#: Default guard posture for ``run_loadgen(guard=True)`` self-serve runs:
#: shed unprotected work above a 32-entry node backlog, drain to half, and
#: hard-limit any backlog at 96 entries regardless of class.
DEFAULT_GUARD_KWARGS = dict(queue_high=32, queue_limit=96)


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str  #: ``"open"`` or ``"closed"``.
    concurrency: int  #: Connection-pool size (closed-loop worker count).
    rate: float | None  #: Open-loop target arrival rate (requests/s).
    sent: int
    completed: int
    errors: int
    duration_s: float
    #: ``{"p50": ..., "p95": ..., "p99": ...}`` in seconds, successful
    #: requests only; NaN when nothing succeeded.
    latency_s: dict[str, float] = field(default_factory=dict)
    #: Responses per HTTP status code (``{"200": ..., "429": ...}``);
    #: transport failures appear under ``"error"``.
    statuses: dict[str, int] = field(default_factory=dict)
    #: Requests the server refused with 429 (front-door shedding).  Not
    #: part of ``errors`` — a refusal is the server protecting itself.
    rejected: int = 0
    #: 200 answers that arrived with ``complete=False`` (the engine's guard
    #: plane shed part of the query tree; the matches are an honest subset).
    shed_answers: int = 0
    #: 200 answers slower than ``deadline_s`` (0 when no deadline was set).
    late_answers: int = 0
    #: Complete, in-deadline 200 answers — the useful-work numerator.
    good: int = 0
    #: The classification deadline applied to 200 answers, if any.
    deadline_s: float | None = None
    #: Decoded response bodies in request order (``collect=True`` runs
    #: only); failed and rejected requests hold None.
    responses: list[Any] | None = None

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def goodput(self) -> float:
        """Complete, in-deadline answers per second (useful work rate)."""
        return self.good / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.sent if self.sent else 0.0

    @property
    def shed_fraction(self) -> float:
        """Fraction of the offered load shed (front door or engine)."""
        return (self.rejected + self.shed_answers) / self.sent if self.sent else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "rejected": self.rejected,
            "shed_answers": self.shed_answers,
            "late_answers": self.late_answers,
            "good": self.good,
            "goodput": self.goodput,
            "shed_fraction": self.shed_fraction,
            "deadline_s": self.deadline_s,
            "statuses": dict(self.statuses),
            "duration_s": self.duration_s,
            "qps": self.qps,
            "latency_ms": {
                label: value * 1e3 for label, value in self.latency_s.items()
            },
        }

    def check(self) -> None:
        """Raise :class:`ServingError` unless the run was clean.

        Clean means zero errors, zero front-door rejections, and finite
        p50/p95/p99 — the CI smoke contract (an all-error run would
        otherwise "pass" with NaN latencies).
        """
        if self.errors:
            raise ServingError(
                f"load run had {self.errors}/{self.sent} errors"
            )
        if self.rejected:
            raise ServingError(
                f"load run had {self.rejected}/{self.sent} rejections (429)"
            )
        self._check_finite_latency()

    def check_overload(self, max_shed_fraction: float = 0.5) -> None:
        """Raise unless an *overload* run degraded gracefully.

        Graceful means: the server never failed (no 5xx, no transport or
        4xx errors — refusals must be clean 429s), the shed fraction
        (front-door rejections plus incomplete answers) stayed within
        ``max_shed_fraction``, and latency percentiles over the answered
        requests are finite (at least one request got through).
        """
        fives = sum(
            count
            for code, count in self.statuses.items()
            if code.isdigit() and int(code) >= 500
        )
        if fives:
            raise ServingError(f"overload run produced {fives} 5xx responses")
        if self.errors:
            raise ServingError(
                f"overload run had {self.errors}/{self.sent} hard errors"
            )
        if self.shed_fraction > max_shed_fraction:
            raise ServingError(
                f"shed fraction {self.shed_fraction:.2f} exceeds "
                f"{max_shed_fraction:.2f} "
                f"({self.rejected} rejected + {self.shed_answers} shed "
                f"of {self.sent})"
            )
        self._check_finite_latency()

    def _check_finite_latency(self) -> None:
        bad = [
            label
            for label, value in self.latency_s.items()
            if not math.isfinite(value)
        ]
        if bad or not self.latency_s:
            raise ServingError(
                f"latency report not finite: {self.latency_s!r}"
            )

    def render(self) -> str:
        lat = ", ".join(
            f"{label}={value * 1e3:.1f}ms"
            for label, value in self.latency_s.items()
        )
        rate = f" rate={self.rate:g}/s" if self.rate is not None else ""
        codes = " ".join(
            f"{code}:{count}" for code, count in sorted(self.statuses.items())
        )
        return (
            f"{self.mode}-loop x{self.concurrency}{rate}: "
            f"{self.completed}/{self.sent} ok, {self.errors} errors, "
            f"{self.rejected} rejected, {self.shed_answers} shed, "
            f"{self.duration_s:.2f}s, {self.qps:.1f} qps, "
            f"{self.goodput:.1f} goodput, {lat} [{codes}]"
        )


async def run_pool(
    host: str,
    port: int,
    requests: list[dict[str, Any]],
    *,
    mode: str = "open",
    rate: float = 100.0,
    concurrency: int = 16,
    priority: str | int | None = None,
    deadline: float | None = None,
    collect: bool = False,
) -> LoadReport:
    """Replay ``requests`` against a running server; returns a report.

    Each request dict holds ``POST /query`` body fields (``query`` plus
    optional ``origin``/``limit``/``seed``/``priority``).  ``priority``
    stamps a default class onto requests that do not carry their own.
    ``deadline`` (seconds) classifies 200 answers as late without ever
    abandoning them.  In open-loop mode arrivals follow the target ``rate``
    and latency runs from the scheduled instant; in closed-loop mode the
    ``concurrency`` connections fire continuously and latency runs from
    connection acquisition.
    """
    if mode not in ("open", "closed"):
        raise ServingError(f"unknown loadgen mode {mode!r}")
    if mode == "open" and rate <= 0:
        raise ServingError(f"open-loop rate must be positive, got {rate}")
    if concurrency < 1:
        raise ServingError(f"concurrency must be >= 1, got {concurrency}")
    if deadline is not None and deadline <= 0:
        raise ServingError(f"deadline must be positive, got {deadline}")
    n = len(requests)
    responses: list[Any] | None = [None] * n if collect else None
    latencies: list[float | None] = [None] * n
    #: Per-request outcome: an HTTP status code, or "error" on transport
    #: failure, paired with the answer's completeness (200s only).
    outcomes: list[tuple[str, bool]] = [("error", False)] * n
    pool_size = max(1, min(concurrency, n or 1))
    clients = [
        await QueryClient(host, port).connect() for _ in range(pool_size)
    ]
    pool: asyncio.Queue = asyncio.Queue()
    for client in clients:
        pool.put_nowait(client)
    t0 = perf_counter()

    async def fire(i: int, req: dict[str, Any]) -> None:
        payload = dict(req)
        if priority is not None and "priority" not in payload:
            payload["priority"] = priority
        scheduled = t0 + i / rate if mode == "open" else None
        if scheduled is not None:
            delay = scheduled - perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        client = await pool.get()
        start = scheduled if scheduled is not None else perf_counter()
        try:
            status, decoded = await client.request("POST", "/query", payload)
        except (ServingError, ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            pool.put_nowait(client)
        if status != 200:
            outcomes[i] = (str(status), False)
            return
        latencies[i] = perf_counter() - start
        complete = bool(decoded.get("result", {}).get("complete", True))
        outcomes[i] = ("200", complete)
        if responses is not None:
            responses[i] = decoded

    try:
        await asyncio.gather(*(fire(i, req) for i, req in enumerate(requests)))
        duration = perf_counter() - t0
    finally:
        for client in clients:
            await client.close()
    statuses: dict[str, int] = {}
    for code, _ in outcomes:
        statuses[code] = statuses.get(code, 0) + 1
    completed = statuses.get("200", 0)
    rejected = statuses.get("429", 0)
    errors = n - completed - rejected
    shed_answers = sum(
        1 for code, complete in outcomes if code == "200" and not complete
    )
    late_answers = sum(
        1
        for lat in latencies
        if lat is not None and deadline is not None and lat > deadline
    )
    good = sum(
        1
        for (code, complete), lat in zip(outcomes, latencies)
        if code == "200"
        and complete
        and (deadline is None or (lat is not None and lat <= deadline))
    )
    return LoadReport(
        mode=mode,
        concurrency=pool_size,
        rate=rate if mode == "open" else None,
        sent=n,
        completed=completed,
        errors=errors,
        duration_s=duration,
        latency_s=percentiles([lat for lat in latencies if lat is not None]),
        statuses=statuses,
        rejected=rejected,
        shed_answers=shed_answers,
        late_answers=late_answers,
        good=good,
        deadline_s=deadline,
        responses=responses,
    )


def run_loadgen(
    host: str = "127.0.0.1",
    port: int | None = None,
    *,
    requests: list[dict[str, Any]] | None = None,
    queries: int = 200,
    mode: str = "open",
    rate: float = 100.0,
    concurrency: int = 16,
    priority: str | int | None = None,
    deadline: float | None = None,
    seed: int = 42,
    self_serve: bool = False,
    nodes: int = 64,
    docs: int = 2_000,
    engine: str = "optimized",
    per_message_delay: float = 0.0,
    guard: bool = False,
    max_inflight: int | None = None,
    max_backlog: int | None = None,
    check: bool = False,
    check_overload: bool = False,
    max_shed_fraction: float = 0.5,
) -> LoadReport:
    """Synchronous load-generation entry point (the ``loadgen`` command).

    Against an external server, pass ``host``/``port``; with
    ``self_serve=True`` a seeded demo system and server are built in-process
    on an ephemeral port (no prior ``serve`` needed — the CI smoke path).
    ``guard=True`` arms the self-served engine with a
    :class:`~repro.guard.GuardPlane` (:data:`DEFAULT_GUARD_KWARGS`) so node
    backlogs shed unprotected work honestly; ``max_inflight`` /
    ``max_backlog`` tune the server's front door (backlog bounding turns
    sustained overload into clean 429s).  ``check=True`` raises unless the
    run was spotless; ``check_overload=True`` instead asserts graceful
    degradation (no 5xx or hard errors, shed fraction within
    ``max_shed_fraction``, finite percentiles).
    """
    if not self_serve and port is None:
        raise ServingError("loadgen needs --port (or --self-serve)")

    async def _main() -> LoadReport:
        if not self_serve:
            reqs = (
                requests
                if requests is not None
                else demo_requests(None, seed, queries)
            )
            return await run_pool(
                host, port, reqs, mode=mode, rate=rate,
                concurrency=concurrency, priority=priority, deadline=deadline,
            )
        from repro.net.server import QueryServer

        eng: Any = engine
        if guard:
            from repro.core.engine import make_engine
            from repro.guard import GuardConfig, GuardPlane

            eng = make_engine(
                engine, guard=GuardPlane(GuardConfig(**DEFAULT_GUARD_KWARGS))
            )
        system = build_demo_system(
            seed=seed, n_nodes=nodes, n_docs=docs, engine=eng
        )
        reqs = (
            requests
            if requests is not None
            else demo_requests(system, seed, queries)
        )
        async with QueryServer(
            system,
            per_message_delay=per_message_delay,
            max_inflight=(
                max_inflight if max_inflight is not None else max(64, concurrency)
            ),
            max_backlog=max_backlog,
        ) as server:
            return await run_pool(
                server.host,
                server.port,
                reqs,
                mode=mode,
                rate=rate,
                concurrency=concurrency,
                priority=priority,
                deadline=deadline,
            )

    report = asyncio.run(_main())
    if check:
        report.check()
    if check_overload:
        report.check_overload(max_shed_fraction)
    return report
