"""Load generator for the query server: open-loop and closed-loop modes.

*Open loop* is the honest way to measure a service's latency: request ``i``
is *scheduled* at ``t0 + i/rate`` regardless of whether earlier requests
have finished, and its latency is measured **from the scheduled instant** —
so when the server falls behind, the queueing delay lands in the tail
percentiles instead of silently slowing the offered load (coordinated
omission).  *Closed loop* is the throughput probe: ``concurrency`` workers
fire back-to-back, measuring per-request service time and aggregate QPS.

Both modes drive a pool of keep-alive :class:`~repro.net.client.QueryClient`
connections, reuse the shared :func:`repro.util.stats.percentiles` helper
for the latency report, and can replay any request list — by default the
skewed :func:`repro.net.demo.demo_requests` trace built on
:mod:`repro.workloads.trace`.

:func:`run_loadgen` is the synchronous entry point behind
``python -m repro loadgen``; with ``self_serve=True`` it builds a seeded
demo system, starts a server on an ephemeral port, and points the generator
at it — the CI smoke leg (zero errors, finite p50/p95/p99 over a 200-query
trace).
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.errors import ServingError
from repro.net.client import QueryClient
from repro.net.demo import build_demo_system, demo_requests
from repro.util.stats import percentiles

__all__ = ["LoadReport", "run_pool", "run_loadgen"]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str  #: ``"open"`` or ``"closed"``.
    concurrency: int  #: Connection-pool size (closed-loop worker count).
    rate: float | None  #: Open-loop target arrival rate (requests/s).
    sent: int
    completed: int
    errors: int
    duration_s: float
    #: ``{"p50": ..., "p95": ..., "p99": ...}`` in seconds, successful
    #: requests only; NaN when nothing succeeded.
    latency_s: dict[str, float] = field(default_factory=dict)
    #: Decoded response bodies in request order (``collect=True`` runs
    #: only); failed requests hold None.
    responses: list[Any] | None = None

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.sent if self.sent else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "latency_ms": {
                label: value * 1e3 for label, value in self.latency_s.items()
            },
        }

    def check(self) -> None:
        """Raise :class:`ServingError` unless the run was clean.

        Clean means zero errors and finite p50/p95/p99 — the CI smoke
        contract (an all-error run would otherwise "pass" with NaN
        latencies).
        """
        if self.errors:
            raise ServingError(
                f"load run had {self.errors}/{self.sent} errors"
            )
        bad = [
            label
            for label, value in self.latency_s.items()
            if not math.isfinite(value)
        ]
        if bad or not self.latency_s:
            raise ServingError(
                f"latency report not finite: {self.latency_s!r}"
            )

    def render(self) -> str:
        lat = ", ".join(
            f"{label}={value * 1e3:.1f}ms"
            for label, value in self.latency_s.items()
        )
        rate = f" rate={self.rate:g}/s" if self.rate is not None else ""
        return (
            f"{self.mode}-loop x{self.concurrency}{rate}: "
            f"{self.completed}/{self.sent} ok, {self.errors} errors, "
            f"{self.duration_s:.2f}s, {self.qps:.1f} qps, {lat}"
        )


async def run_pool(
    host: str,
    port: int,
    requests: list[dict[str, Any]],
    *,
    mode: str = "open",
    rate: float = 100.0,
    concurrency: int = 16,
    collect: bool = False,
) -> LoadReport:
    """Replay ``requests`` against a running server; returns a report.

    Each request dict holds :meth:`QueryClient.query` keyword arguments
    (``query`` plus optional ``origin``/``limit``/``seed``).  In open-loop
    mode arrivals follow the target ``rate`` and latency runs from the
    scheduled instant; in closed-loop mode the ``concurrency`` connections
    fire continuously and latency runs from connection acquisition.
    """
    if mode not in ("open", "closed"):
        raise ServingError(f"unknown loadgen mode {mode!r}")
    if mode == "open" and rate <= 0:
        raise ServingError(f"open-loop rate must be positive, got {rate}")
    if concurrency < 1:
        raise ServingError(f"concurrency must be >= 1, got {concurrency}")
    n = len(requests)
    responses: list[Any] | None = [None] * n if collect else None
    latencies: list[float | None] = [None] * n
    errors = 0
    pool_size = max(1, min(concurrency, n or 1))
    clients = [
        await QueryClient(host, port).connect() for _ in range(pool_size)
    ]
    pool: asyncio.Queue = asyncio.Queue()
    for client in clients:
        pool.put_nowait(client)
    t0 = perf_counter()

    async def fire(i: int, req: dict[str, Any]) -> bool:
        scheduled = t0 + i / rate if mode == "open" else None
        if scheduled is not None:
            delay = scheduled - perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        client = await pool.get()
        start = scheduled if scheduled is not None else perf_counter()
        try:
            response = await client.query(**req)
        except (ServingError, ConnectionError, asyncio.IncompleteReadError):
            return False
        finally:
            pool.put_nowait(client)
        latencies[i] = perf_counter() - start
        if responses is not None:
            responses[i] = response
        return True

    try:
        outcomes = await asyncio.gather(
            *(fire(i, req) for i, req in enumerate(requests))
        )
        errors = sum(1 for ok in outcomes if not ok)
        duration = perf_counter() - t0
    finally:
        for client in clients:
            await client.close()
    return LoadReport(
        mode=mode,
        concurrency=pool_size,
        rate=rate if mode == "open" else None,
        sent=n,
        completed=n - errors,
        errors=errors,
        duration_s=duration,
        latency_s=percentiles([lat for lat in latencies if lat is not None]),
        responses=responses,
    )


def run_loadgen(
    host: str = "127.0.0.1",
    port: int | None = None,
    *,
    requests: list[dict[str, Any]] | None = None,
    queries: int = 200,
    mode: str = "open",
    rate: float = 100.0,
    concurrency: int = 16,
    seed: int = 42,
    self_serve: bool = False,
    nodes: int = 64,
    docs: int = 2_000,
    engine: str = "optimized",
    per_message_delay: float = 0.0,
    check: bool = False,
) -> LoadReport:
    """Synchronous load-generation entry point (the ``loadgen`` command).

    Against an external server, pass ``host``/``port``; with
    ``self_serve=True`` a seeded demo system and server are built in-process
    on an ephemeral port (no prior ``serve`` needed — the CI smoke path).
    ``check=True`` raises unless the run had zero errors and finite
    latency percentiles.
    """
    if not self_serve and port is None:
        raise ServingError("loadgen needs --port (or --self-serve)")

    async def _main() -> LoadReport:
        if not self_serve:
            reqs = (
                requests
                if requests is not None
                else demo_requests(None, seed, queries)
            )
            return await run_pool(
                host, port, reqs, mode=mode, rate=rate, concurrency=concurrency
            )
        from repro.net.server import QueryServer

        system = build_demo_system(
            seed=seed, n_nodes=nodes, n_docs=docs, engine=engine
        )
        reqs = (
            requests
            if requests is not None
            else demo_requests(system, seed, queries)
        )
        async with QueryServer(
            system,
            per_message_delay=per_message_delay,
            max_inflight=max(64, concurrency),
        ) as server:
            return await run_pool(
                server.host,
                server.port,
                reqs,
                mode=mode,
                rate=rate,
                concurrency=concurrency,
            )

    report = asyncio.run(_main())
    if check:
        report.check()
    return report
