"""Seeded demo systems and request workloads for the serving layer.

``python -m repro serve`` needs a populated system to serve, the load
generator's ``--self-serve`` mode needs the *same* system so a twin can
verify answers, and the bench ``serve`` suite needs both plus a skewed
request list.  This module is the single source of those fixtures: every
builder is a pure function of its seed, so a server process and a
verification process construct bit-identical worlds independently.

The corpus shape mirrors the bench harness (word x numeric-size keyword
space over all four query classes) and the request stream comes from
:func:`repro.workloads.trace.synthetic_trace` — Zipf popularity with
bursts, the workload family introduced in the trace suite.
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from repro.core.system import SquidSystem
from repro.keywords.dimensions import NumericDimension, WordDimension
from repro.keywords.space import KeywordSpace
from repro.workloads.trace import synthetic_trace

__all__ = ["build_demo_system", "demo_queries", "demo_requests"]

#: Document vocabulary; stems share 4-char prefixes so prefix queries and
#: exact queries both hit (same idea as the bench harness corpus).
WORD_STEMS = [
    "computer", "computation", "compiler", "network", "netbook", "neural",
    "database", "dataflow", "storage", "stochastic", "stream", "search",
    "parallel", "partition", "peer", "protocol", "query", "quantum",
]

#: Sizes present in the corpus (exact size queries hit these).
SIZES = [128, 256, 300, 512, 640, 1024]


def build_demo_system(
    seed: int = 42,
    n_nodes: int = 64,
    n_docs: int = 2_000,
    bits: int = 12,
    engine: str = "optimized",
    curve: str | None = None,
    result_cache: Any = None,
) -> SquidSystem:
    """A populated (keyword, size) system — identical for identical args."""
    space = KeywordSpace(
        [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=bits
    )
    system = SquidSystem.create(
        space,
        n_nodes=n_nodes,
        seed=seed,
        curve=curve,
        engine=engine,
        result_cache=result_cache,
    )
    rng = random.Random(seed)
    keys = [
        (rng.choice(WORD_STEMS), float(rng.choice(SIZES)))
        for _ in range(n_docs)
    ]
    system.publish_many(keys, payloads=range(n_docs))
    return system


def demo_queries(seed: int, count: int) -> list[str]:
    """A seeded mixed-class query pool (exact / prefix / wildcard / range)."""
    rng = random.Random(seed * 7 + 1)
    queries: list[str] = []
    for i in range(count):
        cls = ("exact", "prefix", "wildcard", "range")[i % 4]
        stem = rng.choice(WORD_STEMS)
        size = rng.choice(SIZES)
        if cls == "exact":
            queries.append(f"({stem}, {size})")
        elif cls == "prefix":
            queries.append(f"({stem[:4]}*, {size})")
        elif cls == "wildcard":
            queries.append(f"(*, {size})")
        else:
            lo = rng.choice([s for s in SIZES if s < 1024])
            queries.append(f"(*, {lo}-1024)")
    return queries


def demo_requests(
    system: SquidSystem | None,
    seed: int,
    count: int,
    pool_size: int = 32,
    zipf_exponent: float = 1.0,
    burstiness: float = 0.2,
) -> list[dict[str, Any]]:
    """``count`` query requests drawn from a skewed synthetic trace.

    Each request is a JSON-ready dict.  With a ``system``, every request
    carries an explicitly chosen (seeded) ``origin``, so a served run and
    an in-process verification run resolve from identical entry points —
    the precondition for the bench suite's bit-identity guard.  Without one
    (load-generating against a remote server whose node ids are unknown)
    each request carries a derived ``seed`` instead, making the *server's*
    origin selection reproducible per request.
    """
    space = (
        system.space
        if system is not None
        else KeywordSpace(
            [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=12
        )
    )
    pool = [space.as_query(t) for t in demo_queries(seed, pool_size)]
    trace = synthetic_trace(
        pool,
        count,
        zipf_exponent=zipf_exponent,
        burstiness=burstiness,
        rng=seed + 1,
    )
    if system is None:
        return [
            {"query": str(op.query), "seed": seed * 1_000_003 + i}
            for i, op in enumerate(trace)
        ]
    ids = system.overlay.node_ids()
    gen = np.random.default_rng(seed + 2)
    return [
        {
            "query": str(op.query),
            "origin": int(ids[int(gen.integers(0, len(ids)))]),
        }
        for op in trace
    ]
