"""``repro.net`` — the serving layer: transports, HTTP server, load gen.

The package turns the in-process Squid simulation into a served system in
three pieces (see ``docs/serving.md``):

* :mod:`repro.net.transport` — the engine/delivery split.
  :class:`SyncTransport` reproduces the original synchronous simulation;
  :class:`AsyncioTransport` delivers the same work entries through per-node
  bounded priority inboxes with query correlation ids, running many queries
  concurrently while keeping each run bit-identical to its sync execution.
* :mod:`repro.net.server` / :mod:`repro.net.client` — a zero-dependency
  HTTP/1.1 JSON front-end (``python -m repro serve``) and its keep-alive
  client.  The server admits by priority class, bounds its waiting room,
  and answers ``429 Too Many Requests`` with a ``Retry-After`` header once
  the backlog cap is hit (see ``docs/overload.md``).
* :mod:`repro.net.loadgen` — open-/closed-loop load generation
  (``python -m repro loadgen``) reporting QPS, per-status-code counts,
  goodput (complete in-deadline answers/sec), and p50/p95/p99.
"""

from repro.net.client import QueryClient
from repro.net.demo import build_demo_system, demo_queries, demo_requests
from repro.net.loadgen import LoadReport, run_loadgen, run_pool
from repro.net.server import QueryServer, encode_result
from repro.net.transport import AsyncioTransport, SyncTransport, Transport

__all__ = [
    "Transport",
    "SyncTransport",
    "AsyncioTransport",
    "QueryServer",
    "QueryClient",
    "encode_result",
    "LoadReport",
    "run_pool",
    "run_loadgen",
    "build_demo_system",
    "demo_queries",
    "demo_requests",
]
