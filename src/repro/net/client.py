"""Minimal asyncio HTTP/JSON client for :class:`~repro.net.server.QueryServer`.

One :class:`QueryClient` holds one keep-alive connection; requests on a
single client are strictly sequential (HTTP/1.1 without pipelining), so
concurrency means *many clients* — which is exactly how the load generator
and the bench ``serve`` suite model concurrent users.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ServingError
from repro.net.server import read_http_response

__all__ = ["QueryClient"]


class QueryClient:
    """A keep-alive JSON client bound to one server address."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "QueryClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "QueryClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One round-trip; returns ``(status_code, decoded_json_body)``."""
        if self._writer is None or self._reader is None:
            raise ServingError("QueryClient used before connect()")
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, _, raw = await read_http_response(self._reader)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(f"undecodable response body: {exc}") from exc
        return status, decoded

    async def get(self, path: str) -> dict[str, Any]:
        """GET ``path``; raises :class:`ServingError` on a non-200 status."""
        status, decoded = await self.request("GET", path)
        if status != 200:
            raise ServingError(f"GET {path} -> {status}: {decoded.get('error')}")
        return decoded

    async def query(
        self,
        query: str,
        origin: int | None = None,
        limit: int | None = None,
        seed: int | None = None,
    ) -> dict[str, Any]:
        """POST one query; returns the ``{"result": ..., "stats": ...}`` body.

        Raises :class:`ServingError` on any non-200 response, carrying the
        server's error message.
        """
        payload: dict[str, Any] = {"query": query}
        if origin is not None:
            payload["origin"] = origin
        if limit is not None:
            payload["limit"] = limit
        if seed is not None:
            payload["seed"] = seed
        status, decoded = await self.request("POST", "/query", payload)
        if status != 200:
            raise ServingError(
                f"query {query!r} -> {status}: {decoded.get('error')}"
            )
        return decoded
