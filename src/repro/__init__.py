"""Squid — flexible information discovery in decentralized distributed systems.

A faithful, laptop-scale reproduction of Schmidt & Parashar (HPDC 2003):
a P2P discovery system supporting keyword, partial-keyword, wildcard and
range queries with guarantees, built from

* a Hilbert space-filling-curve index over a typed keyword space
  (:mod:`repro.sfc`, :mod:`repro.keywords`),
* a Chord overlay sharing the curve's index space (:mod:`repro.overlay`),
* a distributed query engine with recursive refinement, pruning and
  aggregation (:mod:`repro.core`),
* join-time and runtime load balancing (:mod:`repro.core.loadbalance`),
* baselines (flooding, inverted index, inverse-SFC/CAN) and the paper's
  full experiment suite (:mod:`repro.baselines`, :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import KeywordSpace, SquidSystem, WordDimension
>>> space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)
>>> system = SquidSystem.create(space, n_nodes=16, seed=7)
>>> _ = system.publish(("computer", "network"), payload="doc-1")
>>> system.query("(comp*, *)").matches[0].payload
'doc-1'
"""

from repro.core.engine import NaiveEngine, OptimizedEngine, QueryEngine, make_engine
from repro.core.loadbalance import (
    VirtualNodeManager,
    grow_with_join_lb,
    neighbor_balance_round,
    run_neighbor_balancing,
)
from repro.core.metrics import QueryResult, QueryStats
from repro.core.replication import ReplicationManager
from repro.core.resultcache import ResultCache, set_default_result_cache
from repro.core.system import SquidSystem
from repro.keywords import (
    CategoricalDimension,
    Exact,
    KeywordSpace,
    NumericDimension,
    NumericRange,
    Prefix,
    Query,
    Wildcard,
    WordDimension,
    parse_terms,
)
from repro.core.hotspots import CachingQueryLayer, HotspotMonitor
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    QueryTrace,
    Tracer,
    collecting,
    get_registry,
    profiling,
    set_registry,
)
from repro.overlay import CanOverlay, ChordRing, LatencyModel, ProximityChordRing
from repro.sfc import GrayCurve, HilbertCurve, MortonCurve, make_curve
from repro.store import (
    ColumnarStore,
    LocalStore,
    NodeStore,
    SQLiteStore,
    StoredElement,
    StoreSpec,
    get_store,
)

__version__ = "1.0.0"

__all__ = [
    "SquidSystem",
    "QueryEngine",
    "OptimizedEngine",
    "NaiveEngine",
    "make_engine",
    "QueryResult",
    "QueryStats",
    "KeywordSpace",
    "WordDimension",
    "NumericDimension",
    "CategoricalDimension",
    "Query",
    "Wildcard",
    "Exact",
    "Prefix",
    "NumericRange",
    "parse_terms",
    "ChordRing",
    "CanOverlay",
    "LatencyModel",
    "ProximityChordRing",
    "HilbertCurve",
    "MortonCurve",
    "GrayCurve",
    "make_curve",
    "CachingQueryLayer",
    "HotspotMonitor",
    "ResultCache",
    "set_default_result_cache",
    "LocalStore",
    "ColumnarStore",
    "SQLiteStore",
    "NodeStore",
    "StoreSpec",
    "get_store",
    "StoredElement",
    "VirtualNodeManager",
    "ReplicationManager",
    "FaultConfig",
    "FaultPlane",
    "RetryPolicy",
    "grow_with_join_lb",
    "neighbor_balance_round",
    "run_neighbor_balancing",
    "Tracer",
    "QueryTrace",
    "MetricsRegistry",
    "PhaseProfiler",
    "collecting",
    "profiling",
    "get_registry",
    "set_registry",
    "__version__",
]
