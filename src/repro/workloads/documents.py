"""Document workloads for the P2P storage scenario (paper §4.1.1–4.1.2).

Generates unique keyword combinations ("keys") over a Zipf vocabulary for
2-D and 3-D keyword spaces, matching the paper's setup: "up to 10^5 keys
(unique keyword combinations) in the system, each of which could be
associated with one or more data elements".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.util.rng import RandomLike, as_generator
from repro.workloads.corpus import Vocabulary

__all__ = ["DocumentWorkload", "storage_space"]


def storage_space(dims: int, bits: int = 20) -> KeywordSpace:
    """The paper's storage keyword space: ``dims`` word dimensions."""
    if dims < 1:
        raise WorkloadError(f"dims must be >= 1, got {dims}")
    return KeywordSpace(
        [WordDimension(f"kw{i + 1}") for i in range(dims)], bits=bits
    )


@dataclass
class DocumentWorkload:
    """A reproducible set of unique document keys over a vocabulary."""

    space: KeywordSpace
    vocabulary: Vocabulary
    keys: list[tuple[str, ...]]

    @classmethod
    def generate(
        cls,
        dims: int,
        n_keys: int,
        vocabulary_size: int = 2000,
        zipf_exponent: float = 1.0,
        bits: int = 20,
        rng: RandomLike = None,
    ) -> "DocumentWorkload":
        """Generate ``n_keys`` distinct keyword combinations."""
        gen = as_generator(rng)
        space = storage_space(dims, bits=bits)
        vocab = Vocabulary(vocabulary_size, exponent=zipf_exponent, rng=gen)
        # Rejection-sample distinct combinations; Zipf skew makes collisions
        # common, so draw in batches.  Keys keep their (seeded) generation
        # order so a prefix slice is an unbiased smaller workload — the
        # paper's sweeps grow keys and nodes together.
        keys: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        guard = 0
        while len(keys) < n_keys:
            batch = max(n_keys - len(keys), 1024)
            words = vocab.sample(batch * dims, rng=gen)
            for i in range(batch):
                key = tuple(words[i * dims : (i + 1) * dims])
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
                    if len(keys) >= n_keys:
                        break
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise WorkloadError(
                    "cannot generate enough distinct keys; "
                    "increase vocabulary_size or lower n_keys"
                )
        return cls(space=space, vocabulary=vocab, keys=keys)

    def popular_word(self, rank: int = 0) -> str:
        """A word by popularity rank — useful for picking Q1 query targets."""
        return self.vocabulary.popular(rank + 1)[rank]

    def count_matching(self, query) -> int:
        """Oracle count of keys matching a query (workload-side, no system)."""
        q = self.space.as_query(query)
        return sum(1 for key in self.keys if self.space.matches(key, q))
