"""Workload generation: corpora, documents, grid resources, queries."""

from repro.workloads.corpus import COMMON_STEMS, Vocabulary, zipf_weights
from repro.workloads.documents import DocumentWorkload, storage_space
from repro.workloads.queries import (
    q1_queries,
    q2_queries,
    q3_full_range_queries,
    q3_keyword_range_queries,
)
from repro.workloads.resources import GRID_ATTRIBUTES, ResourceWorkload, grid_space
from repro.workloads.streams import ZipfQueryStream
from repro.workloads.trace import (
    Trace,
    TraceOp,
    load_aol_trace,
    load_msmarco_trace,
    replay,
    synthetic_trace,
    text_to_query,
)

__all__ = [
    "COMMON_STEMS",
    "Vocabulary",
    "zipf_weights",
    "DocumentWorkload",
    "storage_space",
    "ResourceWorkload",
    "grid_space",
    "GRID_ATTRIBUTES",
    "q1_queries",
    "q2_queries",
    "q3_keyword_range_queries",
    "q3_full_range_queries",
    "ZipfQueryStream",
    "Trace",
    "TraceOp",
    "load_aol_trace",
    "load_msmarco_trace",
    "replay",
    "synthetic_trace",
    "text_to_query",
]
