"""Query generators for the paper's three evaluation query types (§4.1).

* **Q1** — one keyword or partial keyword, rest wildcards:
  ``(computer, *)``, ``(comp*, *, *)``.
* **Q2** — two or three keywords / partial keywords (at least one partial):
  ``(comp*, net*)``, ``(computer, network, *)``.
* **Q3** — range queries: ``(keyword, range, *)`` and
  ``(range, range, range)``.

Generators draw query targets from the workload itself so queries have
nonzero (and varied) match counts, as in the paper's experiments where each
query "resulted in a different number of matches".
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.keywords.query import Exact, NumericRange, Prefix, Query, Wildcard
from repro.util.rng import RandomLike, as_generator
from repro.workloads.documents import DocumentWorkload
from repro.workloads.resources import GRID_ATTRIBUTES, ResourceWorkload

__all__ = ["q1_queries", "q2_queries", "q3_keyword_range_queries", "q3_full_range_queries"]


def q1_queries(
    workload: DocumentWorkload,
    count: int = 6,
    prefix_fraction: float = 0.5,
    rng: RandomLike = None,
) -> list[Query]:
    """Q1: a single (partial) keyword in dimension 0, wildcards elsewhere.

    Targets are drawn from words actually used by the workload's keys, mixed
    between whole keywords and 3-5 character prefixes.
    """
    gen = as_generator(rng)
    dims = workload.space.dims
    keys = workload.keys
    if not keys:
        raise WorkloadError("workload has no keys")
    queries = []
    for i in range(count):
        # Draw from the keys themselves: query targets are then frequency-
        # weighted, like the paper's queries with tens to thousands of
        # matches.
        word = keys[int(gen.integers(0, len(keys)))][0]
        use_prefix = gen.random() < prefix_fraction and len(word) > 3
        if use_prefix:
            plen = int(gen.integers(3, min(6, len(word))))
            term = Prefix(word[:plen])
        else:
            term = Exact(word)
        queries.append(Query((term,) + (Wildcard(),) * (dims - 1)))
    return queries


def q2_queries(
    workload: DocumentWorkload,
    count: int = 5,
    rng: RandomLike = None,
) -> list[Query]:
    """Q2: two specified dimensions, at least one partial keyword."""
    gen = as_generator(rng)
    dims = workload.space.dims
    if dims < 2:
        raise WorkloadError("Q2 queries need at least two dimensions")
    queries = []
    keys = workload.keys
    for i in range(count):
        key = keys[int(gen.integers(0, len(keys)))]
        w1, w2 = key[0], key[1]
        plen1 = int(gen.integers(3, max(4, len(w1)))) if len(w1) > 3 else len(w1)
        first = Prefix(w1[:plen1])
        second = Prefix(w2[:3]) if gen.random() < 0.5 and len(w2) > 3 else Exact(w2)
        terms: list = [first, second]
        terms.extend([Wildcard()] * (dims - 2))
        queries.append(Query(tuple(terms)))
    return queries


def q3_keyword_range_queries(
    workload: ResourceWorkload,
    count: int = 4,
    rng: RandomLike = None,
) -> list[Query]:
    """Q3 form (value, range, *): first attribute pinned, second ranged.

    Mirrors the paper's "(keyword, range, *)" experiments (Figure 15): the
    pinned value plays the keyword role in an attribute space.
    """
    gen = as_generator(rng)
    if workload.space.dims < 3:
        raise WorkloadError("keyword-range queries need >= 3 dimensions")
    queries = []
    for _ in range(count):
        key = workload.keys[int(gen.integers(0, len(workload.keys)))]
        pinned = Exact(key[0])
        low, high = _range_around(workload.attributes[1], key[1], gen)
        terms = [pinned, NumericRange(low, high)]
        terms.extend([Wildcard()] * (workload.space.dims - 2))
        queries.append(Query(tuple(terms)))
    return queries


def q3_full_range_queries(
    workload: ResourceWorkload,
    count: int = 5,
    rng: RandomLike = None,
) -> list[Query]:
    """Q3 form (range, range, range): every dimension ranged (Figure 17)."""
    gen = as_generator(rng)
    queries = []
    for _ in range(count):
        key = workload.keys[int(gen.integers(0, len(workload.keys)))]
        terms = []
        for attr, value in zip(workload.attributes, key):
            low, high = _range_around(attr, value, gen)
            terms.append(NumericRange(low, high))
        queries.append(Query(tuple(terms)))
    return queries


def _range_around(attribute: str, value: float, gen) -> tuple[float, float]:
    """A random range containing ``value``, sized 10-60% of the domain."""
    lo_bound, hi_bound, _ = GRID_ATTRIBUTES[attribute]
    span = hi_bound - lo_bound
    width = float(gen.uniform(0.1, 0.6)) * span
    low = max(lo_bound, value - float(gen.uniform(0.2, 0.8)) * width)
    high = min(hi_bound, low + width)
    low = min(low, value)
    high = max(high, value)
    return low, high
