"""Synthetic keyword corpus with realistic skew.

The paper's storage-system workloads describe documents by common words.
Word usage in real corpora is Zipf-distributed and words cluster
lexicographically (many share prefixes: compute/computer/computation...).
This module reproduces both properties:

* a base vocabulary mixing an embedded list of common English stems with
  pronounceable synthetic derivations (stem + suffix), giving heavy prefix
  sharing;
* Zipf-ranked sampling over that vocabulary.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.util.rng import RandomLike, as_generator

__all__ = ["COMMON_STEMS", "Vocabulary", "zipf_weights"]

# A compact embedded stem list: enough real English structure to give the
# keyword space its characteristic lexicographic clustering without shipping
# a dictionary file.
COMMON_STEMS = [
    "access", "account", "act", "adapt", "address", "agent", "alloc",
    "analy", "app", "arch", "array", "assign", "async", "atom", "audit",
    "auth", "backup", "balance", "band", "base", "batch", "bind", "bit",
    "block", "board", "boot", "branch", "bridge", "broad", "buffer", "build",
    "bus", "byte", "cache", "call", "cast", "cell", "cent", "chain",
    "channel", "check", "chip", "class", "client", "clock", "cloud",
    "cluster", "code", "collect", "column", "command", "commit", "common",
    "compact", "company", "compile", "complex", "compress", "comput",
    "concur", "config", "connect", "consist", "control", "copy", "core",
    "count", "cover", "cpu", "crash", "create", "cross", "crypt", "current",
    "cursor", "cycle", "daemon", "data", "debug", "decode", "deep",
    "default", "define", "degree", "delay", "delete", "deliver", "depend",
    "deploy", "design", "detect", "device", "digit", "direct", "disc",
    "discover", "disk", "dispatch", "distribut", "document", "domain",
    "down", "drive", "dual", "dump", "duplex", "dynamic", "edge", "edit",
    "elastic", "element", "embed", "emit", "empty", "encode", "engine",
    "entry", "equal", "error", "event", "exact", "exchange", "exec",
    "expand", "export", "express", "extend", "fabric", "factor", "fail",
    "fast", "fault", "fetch", "fiber", "field", "file", "filter", "final",
    "find", "first", "fixed", "flag", "flash", "flat", "flex", "float",
    "flood", "flow", "flush", "fork", "form", "forward", "frame", "free",
    "frequent", "front", "full", "func", "fuse", "gate", "gather", "general",
    "global", "grain", "grant", "graph", "grid", "group", "guard", "handle",
    "hash", "head", "heap", "heart", "heavy", "hidden", "high", "hint",
    "hold", "hook", "host", "hyper", "ideal", "index", "info", "inherit",
    "init", "inline", "input", "insert", "inspect", "install", "instance",
    "inter", "invoke", "item", "iterate", "job", "join", "journal", "jump",
    "kernel", "key", "kind", "label", "lambda", "lane", "large", "latch",
    "latency", "launch", "layer", "lazy", "leader", "leaf", "lease", "level",
    "library", "light", "limit", "line", "link", "list", "load", "local",
    "lock", "log", "logic", "long", "loop", "machine", "macro", "main",
    "manage", "map", "mark", "mask", "master", "match", "matrix", "measure",
    "media", "member", "memory", "merge", "mesh", "message", "meta",
    "method", "metric", "micro", "migrate", "mirror", "mobile", "mode",
    "model", "modul", "monitor", "mount", "multi", "mutex", "name", "native",
    "nest", "net", "network", "neural", "node", "normal", "notify", "null",
    "object", "offset", "online", "open", "operat", "optim", "order",
    "output", "over", "owner", "pack", "page", "pair", "panel", "parallel",
    "parse", "part", "patch", "path", "pattern", "peer", "perform",
    "persist", "phase", "pipe", "pivot", "plan", "point", "policy", "poll",
    "pool", "port", "post", "power", "prefix", "press", "primary", "print",
    "prior", "probe", "process", "profile", "program", "project", "proof",
    "proto", "proxy", "publish", "pull", "pulse", "push", "quant", "query",
    "queue", "quick", "quota", "random", "range", "rank", "rapid", "rate",
    "read", "ready", "real", "rebalance", "receive", "record", "recover",
    "reduce", "region", "register", "relate", "relay", "release", "remote",
    "render", "repair", "repeat", "replica", "report", "request", "reserve",
    "reset", "resolve", "resource", "response", "rest", "result", "retry",
    "return", "reverse", "ring", "role", "roll", "root", "route", "router",
    "row", "rule", "run", "runtime", "safe", "sample", "scale", "scan",
    "schedule", "schema", "scope", "search", "second", "secret", "section",
    "secure", "segment", "select", "self", "send", "sense", "sequence",
    "serial", "serve", "server", "service", "session", "shard", "share",
    "shell", "shift", "short", "signal", "simple", "single", "sink", "size",
    "slice", "slot", "small", "smart", "snapshot", "socket", "soft", "solid",
    "solve", "sort", "source", "space", "spawn", "spec", "speed", "spin",
    "split", "stack", "stage", "stamp", "standard", "start", "state",
    "static", "station", "status", "steal", "step", "storage", "store",
    "stream", "stress", "string", "stripe", "strong", "struct", "style",
    "subnet", "super", "supply", "support", "swap", "switch", "symbol",
    "sync", "system", "table", "tag", "tail", "target", "task", "template",
    "term", "test", "thread", "tick", "tier", "time", "token", "tool",
    "topic", "topology", "total", "trace", "track", "traffic", "transfer",
    "transform", "transit", "tree", "trigger", "trunk", "trust", "tune",
    "tuple", "turbo", "type", "unit", "update", "upgrade", "upload", "usage",
    "user", "utility", "valid", "value", "vector", "verify", "version",
    "view", "virtual", "volume", "wait", "walk", "watch", "wave", "web",
    "weight", "wide", "window", "wire", "word", "work", "worker", "wrap",
    "write", "zone",
]

_SUFFIXES = ["", "s", "er", "ers", "ing", "ed", "ion", "ions", "or", "able", "ment", "al"]


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf rank weights ``1/rank**exponent``."""
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if exponent < 0:
        raise WorkloadError(f"exponent must be >= 0, got {exponent}")
    weights = 1.0 / np.power(np.arange(1, count + 1, dtype=float), exponent)
    return weights / weights.sum()


class Vocabulary:
    """A ranked vocabulary with Zipf-distributed sampling.

    Words are stem+suffix derivations of :data:`COMMON_STEMS`, shuffled into
    a popularity ranking by the seed, so popular words are spread across the
    alphabet while prefix families still cluster lexicographically.
    """

    def __init__(
        self,
        size: int = 2000,
        exponent: float = 1.0,
        rng: RandomLike = None,
    ) -> None:
        if size < 1:
            raise WorkloadError(f"vocabulary size must be >= 1, got {size}")
        gen = as_generator(rng)
        words: list[str] = []
        seen: set[str] = set()
        stems = list(COMMON_STEMS)
        # Derive until we have enough distinct words.
        round_idx = 0
        while len(words) < size:
            for stem in stems:
                suffix = _SUFFIXES[round_idx % len(_SUFFIXES)]
                extra = (
                    ""
                    if round_idx < len(_SUFFIXES)
                    else "".join(
                        "abcdefghijklmnopqrstuvwxyz"[i]
                        for i in gen.integers(0, 26, size=2)
                    )
                )
                word = stem + suffix + extra
                if word not in seen:
                    seen.add(word)
                    words.append(word)
                if len(words) >= size:
                    break
            round_idx += 1
        order = gen.permutation(size)
        self.words = [words[i] for i in order]
        self.weights = zipf_weights(size, exponent)
        self._gen = gen

    def __len__(self) -> int:
        return len(self.words)

    def sample(self, count: int, rng: RandomLike = None) -> list[str]:
        """Draw ``count`` words according to the Zipf weights."""
        gen = as_generator(rng) if rng is not None else self._gen
        picks = gen.choice(len(self.words), size=count, p=self.weights)
        return [self.words[i] for i in picks]

    def popular(self, count: int) -> list[str]:
        """The ``count`` most popular words (lowest ranks)."""
        return self.words[:count]

    def rank_of(self, word: str) -> int:
        """Popularity rank of ``word`` (0 = most popular)."""
        try:
            return self.words.index(word)
        except ValueError:
            raise WorkloadError(f"{word!r} not in vocabulary") from None
