"""Grid resource workloads (paper Figure 1b and the range-query evaluation).

Models computational resources described by globally defined numeric
attributes — memory, CPU frequency, base bandwidth, storage, cost — with the
clustered, non-uniform value distributions real inventories have (machines
come in standard configurations, not uniform sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.keywords.dimensions import NumericDimension
from repro.keywords.space import KeywordSpace
from repro.util.rng import RandomLike, as_generator

__all__ = ["GRID_ATTRIBUTES", "grid_space", "ResourceWorkload"]

#: name -> (minimum, maximum, standard configuration values)
GRID_ATTRIBUTES: dict[str, tuple[float, float, list[float]]] = {
    "memory": (0.0, 4096.0, [128, 256, 512, 1024, 2048, 4096]),
    "cpu": (0.0, 4000.0, [400, 800, 1200, 1600, 2400, 3200]),
    "bandwidth": (0.0, 1000.0, [10, 100, 155, 622, 1000]),
    "storage": (0.0, 2048.0, [32, 64, 128, 256, 512, 1024, 2048]),
    "cost": (0.0, 100.0, [5, 10, 20, 40, 80]),
}


def grid_space(attributes: list[str] | None = None, bits: int = 16) -> KeywordSpace:
    """A keyword space over the named grid attributes (default: 3-D
    memory/cpu/bandwidth, the paper's range-query example)."""
    names = attributes if attributes is not None else ["memory", "cpu", "bandwidth"]
    dims = []
    for name in names:
        if name not in GRID_ATTRIBUTES:
            raise WorkloadError(
                f"unknown attribute {name!r}; choose from {sorted(GRID_ATTRIBUTES)}"
            )
        lo, hi, _ = GRID_ATTRIBUTES[name]
        dims.append(NumericDimension(name, lo, hi))
    return KeywordSpace(dims, bits=bits)


@dataclass
class ResourceWorkload:
    """A reproducible inventory of grid resources."""

    space: KeywordSpace
    attributes: list[str]
    keys: list[tuple[float, ...]]

    @classmethod
    def generate(
        cls,
        n_resources: int,
        attributes: list[str] | None = None,
        bits: int = 16,
        jitter: float = 0.05,
        rng: RandomLike = None,
    ) -> "ResourceWorkload":
        """Generate resources drawn from standard configurations.

        Each attribute value is a standard configuration point with small
        multiplicative jitter (e.g. reported free memory), yielding the
        clustered, sparse population the paper's index space exhibits.
        """
        if n_resources < 1:
            raise WorkloadError("n_resources must be >= 1")
        gen = as_generator(rng)
        names = attributes if attributes is not None else ["memory", "cpu", "bandwidth"]
        space = grid_space(names, bits=bits)
        columns = []
        for name in names:
            lo, hi, configs = GRID_ATTRIBUTES[name]
            picks = gen.choice(len(configs), size=n_resources)
            base = np.asarray(configs, dtype=float)[picks]
            noise = 1.0 + gen.uniform(-jitter, 0.0, size=n_resources)
            columns.append(np.clip(base * noise, lo, hi))
        matrix = np.stack(columns, axis=1)
        keys = [tuple(float(v) for v in row) for row in matrix]
        return cls(space=space, attributes=list(names), keys=keys)

    def count_matching(self, query) -> int:
        """Oracle count of resources matching a query."""
        q = self.space.as_query(query)
        return sum(1 for key in self.keys if self.space.matches(key, q))
