"""Trace-replay workloads: query-log loaders and skewed synthetic traces.

Every benchmark before this module replayed uniform synthetic sweeps — the
one distribution real discovery systems never see.  Real query logs are
heavily skewed (Zipf popularity), bursty (what was just asked is asked
again immediately), and interleaved with updates.  This module turns such
logs into executable **traces**: ordered sequences of query / publish /
unpublish operations against a :class:`~repro.core.system.SquidSystem`.

Two loader families mirror the classic public log formats:

* :func:`load_aol_trace` — AOL-style tab-separated logs
  (``AnonID\\tQuery\\tQueryTime[\\t...]``, header line optional);
* :func:`load_msmarco_trace` — MS-MARCO-style ``qid\\tquery text`` files.

Both map free-text queries into a :class:`~repro.keywords.space.KeywordSpace`:
tokens fill the space's word dimensions in order (long tokens become
:class:`~repro.keywords.query.Prefix` terms — log queries are rarely exact
vocabulary words), remaining dimensions are wildcarded.

:func:`synthetic_trace` composes a query pool (loaded or generated) into a
full trace with Zipf popularity, geometric bursts, and a configurable
publish:query mix — the workload shape that makes a result cache
(:mod:`repro.core.resultcache`) measurable and its invalidation necessary.
:func:`replay` executes a trace and reports per-operation outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import WorkloadError
from repro.keywords.dimensions import WordDimension
from repro.keywords.query import Exact, Prefix, Query, Wildcard
from repro.keywords.space import KeywordSpace
from repro.util.rng import RandomLike, as_generator
from repro.workloads.corpus import zipf_weights

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import QueryResult
    from repro.core.system import SquidSystem

__all__ = [
    "TraceOp",
    "Trace",
    "load_aol_trace",
    "load_msmarco_trace",
    "text_to_query",
    "synthetic_trace",
    "replay",
]

#: Tokens longer than this become prefix terms of this length — free-text
#: words rarely match a stored vocabulary word exactly, but their stems do.
_PREFIX_LEN = 4


@dataclass(frozen=True)
class TraceOp:
    """One trace operation: a query, a publish, or an unpublish."""

    kind: str  # "query" | "publish" | "unpublish"
    query: Query | None = None
    key: tuple | None = None
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("query", "publish", "unpublish"):
            raise WorkloadError(f"unknown trace op kind {self.kind!r}")
        if self.kind == "query" and self.query is None:
            raise WorkloadError("query ops need a query")
        if self.kind != "query" and self.key is None:
            raise WorkloadError(f"{self.kind} ops need a key")


@dataclass
class Trace:
    """An ordered, replayable operation sequence."""

    ops: list[TraceOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "Trace":
        """A pure-query trace (no updates), in the given order."""
        return cls([TraceOp("query", query=q) for q in queries])

    @property
    def query_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == "query")

    @property
    def update_count(self) -> int:
        return len(self.ops) - self.query_count

    def distinct_queries(self) -> int:
        """Number of distinct query strings among the query ops."""
        return len({str(op.query) for op in self.ops if op.kind == "query"})


# ----------------------------------------------------------------------
# Text -> keyword-space query mapping
# ----------------------------------------------------------------------
def text_to_query(text: str, space: KeywordSpace) -> Query | None:
    """Map one free-text log query into ``space``, or None if untranslatable.

    Tokens (lowercased, alphanumerics only) fill the space's
    :class:`~repro.keywords.dimensions.WordDimension` slots in order; tokens
    longer than ``4`` characters become :class:`Prefix` terms, shorter ones
    :class:`Exact`.  Non-word dimensions and leftover word dimensions get
    :class:`Wildcard`.  Queries with no usable token return None (callers
    skip them, as log-replay tools skip malformed lines).
    """
    tokens = [
        "".join(ch for ch in raw.lower() if ch.isalnum())
        for raw in text.split()
    ]
    tokens = [t for t in tokens if t]
    if not tokens:
        return None
    terms: list = []
    token_iter = iter(tokens)
    used = 0
    for dim in space.dimensions:
        tok = next(token_iter, None) if isinstance(dim, WordDimension) else None
        if tok is None:
            terms.append(Wildcard())
        elif len(tok) > _PREFIX_LEN:
            terms.append(Prefix(tok[:_PREFIX_LEN]))
            used += 1
        else:
            terms.append(Exact(tok))
            used += 1
    if used == 0:
        return None
    return Query(tuple(terms))


def _iter_lines(source: "str | Path | Iterable[str]") -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            yield from fh
    else:
        yield from source


def load_aol_trace(
    source: "str | Path | Iterable[str]",
    space: KeywordSpace,
    limit: int | None = None,
) -> list[Query]:
    """Load an AOL-style query log: ``AnonID\\tQuery\\tQueryTime[\\t...]``.

    ``source`` is a path or an iterable of lines.  A header line (field
    named ``Query``) and malformed/empty rows are skipped; click-through
    duplicates (same user re-listed per clicked result) are kept — the
    repetition *is* the workload.  Returns at most ``limit`` queries, in
    log order.
    """
    queries: list[Query] = []
    for line in _iter_lines(source):
        parts = line.rstrip("\n").split("\t")
        if len(parts) < 2:
            continue
        text = parts[1].strip()
        if not text or text.lower() == "query":  # header row
            continue
        q = text_to_query(text, space)
        if q is None:
            continue
        queries.append(q)
        if limit is not None and len(queries) >= limit:
            break
    return queries


def load_msmarco_trace(
    source: "str | Path | Iterable[str]",
    space: KeywordSpace,
    limit: int | None = None,
) -> list[Query]:
    """Load an MS-MARCO-style query file: ``qid\\tquery text`` per line."""
    queries: list[Query] = []
    for line in _iter_lines(source):
        parts = line.rstrip("\n").split("\t", 1)
        if len(parts) < 2:
            continue
        text = parts[1].strip()
        if not text:
            continue
        q = text_to_query(text, space)
        if q is None:
            continue
        queries.append(q)
        if limit is not None and len(queries) >= limit:
            break
    return queries


# ----------------------------------------------------------------------
# Synthetic trace generation
# ----------------------------------------------------------------------
def synthetic_trace(
    queries: Sequence[Query],
    length: int,
    zipf_exponent: float = 1.0,
    burstiness: float = 0.0,
    publish_mix: float = 0.0,
    publish_keys: Sequence[Sequence[Any]] | None = None,
    rng: RandomLike = None,
) -> Trace:
    """Compose a query pool into a skewed, bursty, update-mixed trace.

    * ``zipf_exponent`` — popularity skew over the pool (rank-frequency
      exponent; 0 = uniform, 1.0 = classic Zipf).  The pool order defines
      the ranks.
    * ``burstiness`` in [0, 1) — probability that the next query repeats
      the previous one (geometric burst lengths, the memoryless analogue of
      session re-queries).
    * ``publish_mix`` in [0, 1) — probability that an operation is a
      publish of a key drawn uniformly from ``publish_keys`` (required when
      the mix is nonzero) instead of a query.  Publish payloads are
      ``"trace-pub-{n}"`` with a per-trace counter, so replays on twin
      systems insert identical elements.
    """
    if length < 0:
        raise WorkloadError(f"length must be >= 0, got {length}")
    if not queries and length:
        raise WorkloadError("synthetic_trace needs a non-empty query pool")
    if not 0.0 <= burstiness < 1.0:
        raise WorkloadError(f"burstiness must be in [0, 1), got {burstiness}")
    if not 0.0 <= publish_mix < 1.0:
        raise WorkloadError(f"publish_mix must be in [0, 1), got {publish_mix}")
    if publish_mix > 0.0 and not publish_keys:
        raise WorkloadError("a nonzero publish_mix needs publish_keys")
    gen = as_generator(rng)
    weights = zipf_weights(len(queries), zipf_exponent)
    ops: list[TraceOp] = []
    published = 0
    last_query: Query | None = None
    for _ in range(length):
        if publish_mix > 0.0 and gen.random() < publish_mix:
            key = tuple(publish_keys[int(gen.integers(0, len(publish_keys)))])
            ops.append(
                TraceOp("publish", key=key, payload=f"trace-pub-{published}")
            )
            published += 1
            continue
        if last_query is not None and gen.random() < burstiness:
            ops.append(TraceOp("query", query=last_query))
            continue
        last_query = queries[int(gen.choice(len(queries), p=weights))]
        ops.append(TraceOp("query", query=last_query))
    return Trace(ops)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay(
    system: "SquidSystem",
    trace: Trace,
    seed: RandomLike = 0,
    engine: Any = None,
) -> "list[QueryResult | None]":
    """Execute a trace in order; returns one entry per op (None for updates).

    Query ops run through :meth:`SquidSystem.query` (and therefore through
    the system's result cache when one is attached); publish/unpublish ops
    mutate the data set and trigger the cache's invalidation hooks.  The
    origin-selection RNG is derived from ``seed`` so two replays of the
    same trace are reproducible.
    """
    gen = as_generator(seed)
    out: "list[QueryResult | None]" = []
    for op in trace:
        if op.kind == "query":
            out.append(system.query(op.query, engine=engine, rng=gen))
        elif op.kind == "publish":
            system.publish(op.key, payload=op.payload)
            out.append(None)
        else:
            system.unpublish(op.key, payload=op.payload)
            out.append(None)
    return out
