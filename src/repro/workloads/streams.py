"""Query streams: temporal query workloads for hot-spot and caching studies.

Real discovery traffic repeats: query popularity is Zipf-distributed and
exhibits temporal locality (what was just asked is likely to be asked
again).  :class:`ZipfQueryStream` models both, feeding the hot-spot
experiments (extB) and the caching benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.util.rng import RandomLike, as_generator
from repro.workloads.corpus import zipf_weights

__all__ = ["ZipfQueryStream"]


@dataclass
class ZipfQueryStream:
    """A repeating stream over a fixed query pool.

    ``exponent`` sets the popularity skew (1.0 = classic Zipf), and
    ``locality`` in [0, 1) adds temporal locality: with that probability the
    next query repeats one of the last ``window`` queries instead of an
    independent Zipf draw.
    """

    queries: list[str]
    exponent: float = 1.0
    locality: float = 0.0
    window: int = 4

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError("a query stream needs a non-empty query pool")
        if not 0.0 <= self.locality < 1.0:
            raise WorkloadError(f"locality must be in [0, 1), got {self.locality}")
        if self.window < 1:
            raise WorkloadError(f"window must be >= 1, got {self.window}")
        self._weights = zipf_weights(len(self.queries), self.exponent)

    def generate(self, length: int, rng: RandomLike = None) -> list[str]:
        """Draw ``length`` queries."""
        if length < 0:
            raise WorkloadError(f"length must be >= 0, got {length}")
        gen = as_generator(rng)
        out: list[str] = []
        for _ in range(length):
            if out and gen.random() < self.locality:
                recent = out[-self.window :]
                out.append(recent[int(gen.integers(0, len(recent)))])
            else:
                out.append(self.queries[int(gen.choice(len(self.queries), p=self._weights))])
        return out

    def popularity_counts(self, stream: list[str]) -> dict[str, int]:
        """Occurrences of each pool query in a generated stream."""
        counts = {q: 0 for q in self.queries}
        for q in stream:
            counts[q] = counts.get(q, 0) + 1
        return counts

    def expected_top_share(self, length: int) -> float:
        """Expected fraction of the stream taken by the most popular query
        (ignoring the locality boost, which only increases it)."""
        return float(self._weights[0])
