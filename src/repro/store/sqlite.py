"""SQLite-backed persistent backend (registry name ``"sqlite"``).

Each store owns a SQLite table of ``(node, seq, idx, key, payload)`` rows —
``idx`` is the curve index, ``key``/``payload`` are pickled, ``seq`` is the
per-node arrival counter that preserves publish order.  Range scans are
B-tree lookups on the ``(node, idx)`` index; inserts are batched
(``executemany`` every ``batch_size`` appends, or earlier when the buffer's
estimated bytes exceed ``memory_budget_bytes`` — the spill knob).

Placement (``path``):

* ``None`` — a private in-memory database per store (the default; what the
  tier-1 suite runs under ``REPRO_STORE=sqlite``).
* a directory — one database *file* per store inside it, with a unique
  name; the file is removed on :meth:`close`.
* a file path — one *shared* database; stores are distinguished by the
  ``node`` column (the paper ring's node id, or a process-unique ordinal
  when the store was built without one).

Identity stability (contract point 3 in :mod:`repro.store.base`): a row
cache keyed by ``seq`` is primed with the *original* element objects when
the buffer flushes, so scans return the very objects that were published —
not reconstructions — exactly like the in-memory backends.  Setting
``memory_budget_bytes`` bounds the cache too: entries are evicted
least-recently-*scanned* first (LRU, scans refresh recency), so a skewed
access pattern keeps its hot rows resident instead of losing the whole
cache whenever the budget is crossed.  Evicted rows are unpickled on the
next scan into fresh (equal, but not identical) objects, which is the
documented trade-off of running truly out-of-core; hit/miss/eviction
counts are reported via ``stats()``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import sqlite3
import tempfile
from collections import OrderedDict
from typing import Any, Iterator

from repro.errors import StoreError
from repro.store.base import NodeStore, StoredElement, regroup_run

__all__ = ["SQLiteStore"]

#: Fallback node labels for stores created without a node id (shared files).
_ANON_NODE = itertools.count(1 << 62)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS elements (
    node INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    idx INTEGER NOT NULL,
    key BLOB NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (node, seq)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS ix_elements_node_idx ON elements (node, idx);
"""


class SQLiteStore(NodeStore):
    """Disk-backed node store with batched inserts and indexed range scans."""

    backend_name = "sqlite"

    def __init__(
        self,
        path: str | None = None,
        node_id: int | None = None,
        batch_size: int = 256,
        memory_budget_bytes: int | None = None,
    ) -> None:
        self._node = int(node_id) if node_id is not None else next(_ANON_NODE)
        self._batch_size = max(1, int(batch_size))
        self._budget = memory_budget_bytes
        self._owned_file: str | None = None
        if path is None:
            self._db_path = ":memory:"
        elif os.path.isdir(path) or str(path).endswith(os.sep):
            os.makedirs(path, exist_ok=True)
            fd, fname = tempfile.mkstemp(
                prefix=f"store-node{self._node}-", suffix=".db", dir=str(path)
            )
            os.close(fd)
            self._db_path = self._owned_file = fname
        else:
            self._db_path = str(path)
        self._conn: sqlite3.Connection | None = sqlite3.connect(self._db_path)
        self._conn.executescript(_SCHEMA)
        # Simulation-grade durability: crash-consistency of the *host*
        # process is not part of the model, so skip fsyncs and keep the
        # journal in memory.
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        self._conn.execute("PRAGMA busy_timeout=5000")
        self._next_seq = self._max_seq() + 1
        self._pending: list[StoredElement] = []
        self._pending_bytes = 0
        #: (index, key) pairs sitting in the buffer that are new to the store.
        self._pending_new_pairs: set[tuple[int, tuple]] = set()
        #: seq -> (element, blob bytes), in least-recently-scanned order.
        self._row_cache: "OrderedDict[int, tuple[StoredElement, int]]" = OrderedDict()
        self._cache_bytes = 0
        self._row_cache_hits = 0
        self._row_cache_misses = 0
        self._row_cache_evictions = 0
        self._key_count = 0
        self._element_count = 0
        if self._db_path != ":memory:":
            self._adopt_existing_rows()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, element: StoredElement) -> None:
        self._buffer(element)
        self._count_added(1)

    def add_sorted_bulk(self, elements: list[StoredElement]) -> None:
        for element in elements:
            self._buffer(element)
        self._flush()
        self._count_added(len(elements))

    def pop_range(self, low: int, high: int) -> list[StoredElement]:
        self._check_range(low, high)
        self._flush()
        moved = list(self._scan_rows(low, high))
        if moved:
            cur = self._cursor()
            seqs = cur.execute(
                "SELECT seq FROM elements WHERE node=? AND idx BETWEEN ? AND ?",
                (self._node, low, high),
            ).fetchall()
            cur.execute(
                "DELETE FROM elements WHERE node=? AND idx BETWEEN ? AND ?",
                (self._node, low, high),
            )
            self._conn.commit()
            for (seq,) in seqs:
                entry = self._row_cache.pop(seq, None)
                if entry is not None:
                    self._cache_bytes -= entry[1]
            self._element_count -= len(moved)
            self._key_count -= len({(e.index, e.key) for e in moved})
        self._count_moved(len(moved))
        return moved

    def clear(self) -> None:
        self._pending.clear()
        self._pending_bytes = 0
        self._pending_new_pairs.clear()
        self._row_cache.clear()
        self._cache_bytes = 0
        cur = self._cursor()
        cur.execute("DELETE FROM elements WHERE node=?", (self._node,))
        self._conn.commit()
        self._key_count = 0
        self._element_count = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _scan_span(self, low: int, high: int) -> Iterator[StoredElement]:
        self._flush()
        yield from self._scan_rows(low, high)

    def has_any_in_range(self, low: int, high: int) -> bool:
        if low > high:
            return False
        self._flush()
        row = self._cursor().execute(
            "SELECT 1 FROM elements WHERE node=? AND idx BETWEEN ? AND ? LIMIT 1",
            (self._node, low, high),
        ).fetchone()
        return row is not None

    def all_elements(self) -> Iterator[StoredElement]:
        self._flush()
        yield from self._scan_rows(None, None)

    def indices(self) -> list[int]:
        self._flush()
        rows = self._cursor().execute(
            "SELECT DISTINCT idx FROM elements WHERE node=? ORDER BY idx",
            (self._node,),
        ).fetchall()
        return [int(r[0]) for r in rows]

    def key_count_at(self, index: int) -> int:
        self._flush()
        rows = self._cursor().execute(
            "SELECT key FROM elements WHERE node=? AND idx=?", (self._node, index)
        ).fetchall()
        if len(rows) <= 1:
            return len(rows)
        return len({pickle.loads(r[0]) for r in rows})

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._key_count

    @property
    def element_count(self) -> int:
        return self._element_count

    def memory_bytes(self) -> int:
        """Buffer + row-cache bytes, plus page bytes for in-memory databases."""
        size = self._pending_bytes + self._cache_bytes
        size += len(self._pending) * 72 + len(self._row_cache) * 120
        if self._db_path == ":memory:":
            size += self._page_bytes()
        return int(size)

    def _stats_detail(self) -> dict[str, Any]:
        detail: dict[str, Any] = {
            "pending": len(self._pending),
            "row_cache_entries": len(self._row_cache),
            "row_cache_hits": self._row_cache_hits,
            "row_cache_misses": self._row_cache_misses,
            "row_cache_evictions": self._row_cache_evictions,
            "path": self._db_path,
        }
        if self._db_path != ":memory:":
            detail["disk_bytes"] = self._page_bytes()
        return detail

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, close the connection; remove the file if this store created it."""
        if self._conn is not None:
            self._flush()
            self._conn.close()
            self._conn = None
        if self._owned_file is not None:
            try:
                os.unlink(self._owned_file)
            except OSError:  # pragma: no cover - already gone
                pass
            self._owned_file = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cursor(self) -> sqlite3.Cursor:
        if self._conn is None:
            raise StoreError("store is closed")
        return self._conn.cursor()

    def _max_seq(self) -> int:
        row = self._cursor().execute(
            "SELECT MAX(seq) FROM elements WHERE node=?", (self._node,)
        ).fetchone()
        return int(row[0]) if row and row[0] is not None else -1

    def _adopt_existing_rows(self) -> None:
        """Reopening a persistent file: rebuild the counters from the rows."""
        cur = self._cursor()
        (elements,) = cur.execute(
            "SELECT COUNT(*) FROM elements WHERE node=?", (self._node,)
        ).fetchone()
        self._element_count = int(elements)
        if elements:
            (keys,) = cur.execute(
                "SELECT COUNT(*) FROM (SELECT DISTINCT idx, key FROM elements "
                "WHERE node=?)",
                (self._node,),
            ).fetchone()
            self._key_count = int(keys)

    def _buffer(self, element: StoredElement) -> None:
        pair = (element.index, element.key)
        if pair not in self._pending_new_pairs and not self._pair_on_disk(pair):
            self._pending_new_pairs.add(pair)
            self._key_count += 1
        self._pending.append(element)
        self._pending_bytes += 96  # rough slot + tuple-ref estimate; exact
        # sizes are only known at pickle time, in _flush().
        self._element_count += 1
        if len(self._pending) >= self._batch_size or (
            self._budget is not None and self._pending_bytes > self._budget
        ):
            self._flush()

    def _pair_on_disk(self, pair: tuple[int, tuple]) -> bool:
        index, key = pair
        rows = self._cursor().execute(
            "SELECT key FROM elements WHERE node=? AND idx=?", (self._node, index)
        ).fetchall()
        return any(pickle.loads(r[0]) == key for r in rows)

    def _flush(self) -> None:
        if not self._pending:
            return
        rows = []
        for element in self._pending:
            seq = self._next_seq
            self._next_seq += 1
            key_blob = pickle.dumps(element.key, protocol=pickle.HIGHEST_PROTOCOL)
            payload_blob = pickle.dumps(
                element.payload, protocol=pickle.HIGHEST_PROTOCOL
            )
            rows.append((self._node, seq, element.index, key_blob, payload_blob))
            self._cache_put(seq, element, len(key_blob) + len(payload_blob))
        cur = self._cursor()
        cur.executemany(
            "INSERT INTO elements (node, seq, idx, key, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()
        self._pending.clear()
        self._pending_bytes = 0
        self._pending_new_pairs.clear()

    def _cache_put(self, seq: int, element: StoredElement, blob_bytes: int) -> None:
        old = self._row_cache.pop(seq, None)
        if old is not None:
            self._cache_bytes -= old[1]
        self._row_cache[seq] = (element, blob_bytes)
        self._cache_bytes += blob_bytes
        # Out-of-core mode: shed the least-recently-scanned rows until the
        # identity cache fits the budget again; see the module docstring.
        while (
            self._budget is not None
            and self._cache_bytes > self._budget
            and self._row_cache
        ):
            _, (_, dropped_bytes) = self._row_cache.popitem(last=False)
            self._cache_bytes -= dropped_bytes
            self._row_cache_evictions += 1

    def _scan_rows(self, low: int | None, high: int | None) -> Iterator[StoredElement]:
        cur = self._cursor()
        # Materialize the result set: callers interleave scans with writes
        # (possibly on other stores sharing the file), so no read cursor may
        # stay open while the generator is paused.
        if low is None:
            rows = cur.execute(
                "SELECT seq, idx, key, payload FROM elements WHERE node=? "
                "ORDER BY idx, seq",
                (self._node,),
            ).fetchall()
        else:
            rows = cur.execute(
                "SELECT seq, idx, key, payload FROM elements WHERE node=? "
                "AND idx BETWEEN ? AND ? ORDER BY idx, seq",
                (self._node, low, high),
            ).fetchall()
        run: list[StoredElement] = []
        run_idx: int | None = None
        for seq, idx, key_blob, payload_blob in rows:
            entry = self._row_cache.get(seq)
            if entry is not None:
                element = entry[0]
                self._row_cache.move_to_end(seq)
                self._row_cache_hits += 1
            else:
                self._row_cache_misses += 1
                element = StoredElement(
                    index=int(idx),
                    key=pickle.loads(key_blob),
                    payload=pickle.loads(payload_blob),
                )
                self._cache_put(seq, element, len(key_blob) + len(payload_blob))
            if idx != run_idx and run:
                yield from regroup_run(run)
                run = []
            run_idx = idx
            run.append(element)
        if run:
            yield from regroup_run(run)

    def _page_bytes(self) -> int:
        cur = self._cursor()
        (pages,) = cur.execute("PRAGMA page_count").fetchone()
        (page_size,) = cur.execute("PRAGMA page_size").fetchone()
        return int(pages) * int(page_size)
