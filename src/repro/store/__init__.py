"""Per-node storage for the distributed index."""

from repro.store.local import LocalStore, StoredElement

__all__ = ["LocalStore", "StoredElement"]
