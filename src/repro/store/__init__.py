"""Per-node storage for the distributed index: the pluggable data plane.

Backends implement the :class:`~repro.store.base.NodeStore` contract and are
selected **by name**, mirroring engine/curve selection:

>>> from repro.store import get_store
>>> store = get_store("columnar")
>>> store.backend_name
'columnar'

``REGISTRY`` maps names to classes; the process default (what
``SquidSystem.create(...)`` uses when no ``store=`` is given) resolves as
explicit :func:`set_default_store` call > ``REPRO_STORE`` environment
variable > ``"local"``.
"""

from __future__ import annotations

import os
from typing import Any

from repro.errors import ConfigError
from repro.store.base import NodeStore, StoredElement, StoreSpec, StoreStats
from repro.store.columnar import ColumnarStore
from repro.store.memory import LocalStore
from repro.store.sqlite import SQLiteStore

__all__ = [
    "NodeStore",
    "StoredElement",
    "StoreSpec",
    "StoreStats",
    "LocalStore",
    "ColumnarStore",
    "SQLiteStore",
    "REGISTRY",
    "get_store",
    "as_spec",
    "get_default_store",
    "set_default_store",
]

#: Name -> backend class.  Third parties may register additional backends.
REGISTRY: dict[str, type[NodeStore]] = {
    "local": LocalStore,
    "columnar": ColumnarStore,
    "sqlite": SQLiteStore,
}

_DEFAULT_STORE: str | None = None


def get_store(name: str, **options: Any) -> NodeStore:
    """Instantiate a store backend by registry name.

    ``options`` are passed to the backend constructor (e.g.
    ``get_store("sqlite", path="/tmp/ring/")``).  Unknown names raise a
    :class:`~repro.errors.ConfigError` listing the valid choices.
    """
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown store backend {name!r}; choose from {sorted(REGISTRY)}"
        ) from None
    return cls(**options)


def get_default_store() -> str:
    """The process-default backend name (see module docstring for resolution)."""
    if _DEFAULT_STORE is not None:
        return _DEFAULT_STORE
    env = os.environ.get("REPRO_STORE", "").strip()
    return env if env else "local"


def set_default_store(name: str | None) -> None:
    """Set (or with ``None`` reset) the process-default backend name.

    This is what the CLI ``--store`` flag calls; it overrides the
    ``REPRO_STORE`` environment variable.
    """
    global _DEFAULT_STORE
    if name is not None and name not in REGISTRY:
        raise ConfigError(
            f"unknown store backend {name!r}; choose from {sorted(REGISTRY)}"
        )
    _DEFAULT_STORE = name


def as_spec(store: "str | StoreSpec | None") -> StoreSpec:
    """Coerce a user-facing ``store=`` argument into a :class:`StoreSpec`.

    ``None`` resolves the process default; a string names a backend with
    default options; a spec passes through.  The name is validated here so
    misconfiguration fails at system construction, not at first node join.
    """
    if store is None:
        store = get_default_store()
    if isinstance(store, StoreSpec):
        spec = store
    elif isinstance(store, str):
        spec = StoreSpec(name=store)
    else:
        raise ConfigError(
            f"store must be a backend name or StoreSpec, got {type(store).__name__}"
        )
    if spec.name not in REGISTRY:
        raise ConfigError(
            f"unknown store backend {spec.name!r}; choose from {sorted(REGISTRY)}"
        )
    return spec
