"""The formal node-store API: :class:`NodeStore`, :class:`StoreSpec`.

Every overlay node indexes its SFC-mapped keyword tuples in a *node store*.
This module specifies the store contract that the query engines, the
replication manager, the load balancer, and the fault plane all program
against; concrete backends (:class:`~repro.store.memory.LocalStore`,
:class:`~repro.store.columnar.ColumnarStore`,
:class:`~repro.store.sqlite.SQLiteStore`) live in sibling modules and are
selected by name through :func:`repro.store.get_store`.

The scan contract
-----------------
All read paths reduce to one entry point, :meth:`NodeStore.scan_ranges`
(``scan_range`` is the single-range special case), whose semantics every
backend must reproduce **exactly** — the cross-backend equivalence suite in
``tests/store/`` asserts byte-identical output against ``LocalStore``:

1. *Selection.*  Given inclusive index ranges, every stored element whose
   curve index falls in the union of the ranges is yielded **exactly
   once** — ranges are normalized first (invalid ``low > high`` ranges
   dropped, the rest sorted by ``low`` and coalesced), so overlapping or
   unsorted input cannot duplicate elements.
2. *Ordering.*  Elements are yielded in ascending index order.  Elements
   sharing an index are grouped by key: key groups appear in first-publish
   order, and elements inside a group in publish order.  (This is the
   arrival order a sorted multimap ``index -> {key -> [elements]}``
   produces, and what result ordering downstream has always observed.)
3. *Stability.*  Scanning the same stored element twice yields the *same
   object*, not merely an equal one — identity-based result accounting
   (e.g. recall measurement against ``brute_force_matches``) relies on it.
   Disk-backed stores satisfy this with a row cache primed at insert.
4. *Accounting.*  One ``store.range_scans`` metric per non-empty scan
   batch, regardless of how many ranges it contains.

:meth:`NodeStore.pop_range` returns the removed elements in scan order, so
key handoffs (joins, load balancing, replica promotion) rebuild the same
arrival order on the receiving store regardless of backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.errors import StoreError
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["StoredElement", "StoreStats", "StoreSpec", "NodeStore"]


@dataclass(frozen=True)
class StoredElement:
    """A data element at rest: its curve index, keyword tuple, and payload."""

    index: int
    key: tuple[Any, ...]
    payload: Any = None


@dataclass(frozen=True)
class StoreStats:
    """One backend-agnostic snapshot of a store's size and footprint."""

    #: Registry name of the backend (``"local"``, ``"columnar"``, ...).
    backend: str
    #: Data elements held (documents/resources).
    elements: int
    #: Distinct ``(index, key)`` combinations held (the paper's load unit).
    keys: int
    #: Estimated resident bytes of the store's own structures (container
    #: arrays, buffers, caches); payload objects themselves are not deep-sized.
    memory_bytes: int
    #: Backend-specific extras (e.g. ``disk_bytes``, ``pending`` buffer depth).
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class StoreSpec:
    """A picklable recipe for building a store: registry name + options.

    :class:`~repro.exec.spec.SystemSpec` carries one of these so spawn-started
    workers rebuild the same backend the parent used;
    :class:`~repro.core.system.SquidSystem` and
    :class:`~repro.core.replication.ReplicationManager` create every per-node
    store through it.
    """

    name: str = "local"
    options: dict[str, Any] = field(default_factory=dict)

    def create(self, node_id: int | None = None) -> "NodeStore":
        """Instantiate the backend (``node_id`` labels per-node resources)."""
        from repro.store import get_store

        return get_store(self.name, node_id=node_id, **self.options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        opts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.options.items()))
        return f"StoreSpec({self.name!r}{', ' + opts if opts else ''})"


def normalize_ranges(ranges: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Canonical scan input: drop invalid ranges, sort, coalesce overlaps.

    The returned ranges are sorted by ``low`` and pairwise disjoint (adjacent
    ranges are merged too — the union, and therefore the scan output, is
    identical), so a backend can scan them left to right without ever
    revisiting an index.
    """
    spans = sorted((low, high) for low, high in ranges if low <= high)
    merged: list[tuple[int, int]] = []
    for low, high in spans:
        if merged and low <= merged[-1][1] + 1:
            if high > merged[-1][1]:
                merged[-1] = (merged[-1][0], high)
        else:
            merged.append((low, high))
    return merged


def regroup_run(elements: Sequence[StoredElement]) -> Iterator[StoredElement]:
    """Yield one equal-index run in the contract order (see module docstring).

    ``elements`` must share an index and be in arrival order; grouping them
    stably by key reproduces the multimap ordering: key groups in
    first-arrival order, arrival order inside each group.
    """
    if len(elements) == 1:
        yield elements[0]
        return
    groups: dict[tuple, list[StoredElement]] = {}
    for element in elements:
        groups.setdefault(element.key, []).append(element)
    for per_key in groups.values():
        yield from per_key


class NodeStore(ABC):
    """Abstract per-node store: the protocol every backend implements.

    Subclasses implement the abstract primitives; the concrete methods here
    provide the shared semantics (range normalization, scan metrics,
    snapshot/restore, stats) so backends cannot drift on the contract
    documented in the module docstring.
    """

    #: Registry name; set by each backend class.
    backend_name: str = "abstract"

    # ------------------------------------------------------------------
    # Abstract primitives
    # ------------------------------------------------------------------
    @abstractmethod
    def add(self, element: StoredElement) -> None:
        """Insert one element."""

    @abstractmethod
    def add_sorted_bulk(self, elements: list[StoredElement]) -> None:
        """Bulk insert; amortizes per-element index maintenance."""

    @abstractmethod
    def pop_range(self, low: int, high: int) -> list[StoredElement]:
        """Remove and return every element with index in ``[low, high]``.

        Raises :class:`~repro.errors.StoreError` when ``low > high``.  The
        returned list is in scan order (contract point 2), so re-adding it
        elsewhere preserves arrival order.
        """

    @abstractmethod
    def _scan_span(self, low: int, high: int) -> Iterator[StoredElement]:
        """Yield ``[low, high]`` in contract order; no metrics, no validation."""

    @abstractmethod
    def all_elements(self) -> Iterator[StoredElement]:
        """Every element, in contract scan order over the whole index space."""

    @abstractmethod
    def indices(self) -> list[int]:
        """Sorted distinct indices present in the store (Python ints)."""

    @abstractmethod
    def key_count_at(self, index: int) -> int:
        """Number of distinct keys stored at ``index``."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all contents (counters included); used by :meth:`restore`."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Estimated resident bytes of store structures (see StoreStats)."""

    @property
    @abstractmethod
    def key_count(self) -> int:
        """Distinct keyword combinations stored (the paper's load measure)."""

    @property
    @abstractmethod
    def element_count(self) -> int:
        """Data elements stored."""

    # ------------------------------------------------------------------
    # Shared read paths
    # ------------------------------------------------------------------
    def scan_range(self, low: int, high: int) -> Iterator[StoredElement]:
        """Yield elements with index in ``[low, high]`` in contract order."""
        if low > high:
            return
        self._count_scan()
        yield from self._scan_span(low, high)

    def scan_ranges(self, ranges) -> Iterator[StoredElement]:
        """Yield the union of several index ranges in one pass.

        This is the single scan entry point the engines and the fault
        plane's replica failover use.  Input ranges are normalized (sorted,
        coalesced, invalid ranges dropped), so each selected element is
        yielded exactly once even when the input overlaps; output follows
        the contract order.  Counts one ``store.range_scans`` metric for
        the whole non-empty batch.
        """
        first = True
        for low, high in normalize_ranges(ranges):
            if first:
                first = False
                self._count_scan()
            yield from self._scan_span(low, high)

    def has_any_in_range(self, low: int, high: int) -> bool:
        """True if any element index falls in ``[low, high]``."""
        if low > high:
            return False
        for _ in self._scan_span(low, high):
            return True
        return False

    def split_point_by_load(self) -> int | None:
        """Index below which about half the keys live (for boundary shifts).

        Returns the index such that handing ``[min_index, result]`` away
        moves roughly half this store's keys; ``None`` when the store holds
        fewer than two distinct indices.
        """
        idxs = self.indices()
        if len(idxs) < 2:
            return None
        counted = 0
        half = self.key_count / 2
        for index in idxs[:-1]:
            counted += self.key_count_at(index)
            if counted >= half:
                return index
        return idxs[-2]

    # ------------------------------------------------------------------
    # Replication / persistence support
    # ------------------------------------------------------------------
    def snapshot(self) -> list[StoredElement]:
        """The full contents in scan order, as a picklable list.

        ``restore(snapshot())`` on any backend rebuilds a scan-identical
        store — the replication and spawn-rebuild paths rely on snapshots
        being backend-portable.
        """
        return list(self.all_elements())

    def restore(self, elements: Iterable[StoredElement]) -> None:
        """Replace the contents with ``elements`` (a :meth:`snapshot`)."""
        self.clear()
        elements = list(elements)
        if elements:
            self.add_sorted_bulk(elements)

    def stats(self) -> StoreStats:
        """Size/footprint snapshot (uniform across backends)."""
        return StoreStats(
            backend=self.backend_name,
            elements=self.element_count,
            keys=self.key_count,
            memory_bytes=self.memory_bytes(),
            detail=self._stats_detail(),
        )

    def close(self) -> None:
        """Release external resources (connections, files); idempotent."""

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _stats_detail(self) -> dict[str, Any]:
        return {}

    @staticmethod
    def _check_range(low: int, high: int) -> None:
        if low > high:
            raise StoreError(f"invalid range [{low}, {high}]")

    @staticmethod
    def _count_scan() -> None:
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.range_scans").inc()

    @staticmethod
    def _count_added(n: int) -> None:
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.elements_added").inc(n)

    @staticmethod
    def _count_moved(n: int) -> None:
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.elements_moved").inc(n)

    def __len__(self) -> int:
        return self.element_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(keys={self.key_count}, "
            f"elements={self.element_count})"
        )
