"""The array-of-buckets in-memory backend (registry name ``"local"``).

This is the original per-node store: a sorted multimap
``index -> {key -> [elements]}``.  It *defines* the scan contract the other
backends are tested against (see :mod:`repro.store.base`) and remains the
default — fastest for paper-scale figures, with every element resident as a
Python object.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right, insort
from typing import Iterator

from repro.store.base import NodeStore, StoredElement

__all__ = ["LocalStore", "StoredElement"]


class LocalStore(NodeStore):
    """Sorted multimap ``index -> {key -> [elements]}``.

    *Keys* (unique keyword combinations, the paper's load unit) may collide
    on an index (quantization); *elements* (documents/resources) may share a
    key.  Load-balancing moves whole index ranges between stores.
    """

    backend_name = "local"

    def __init__(self, node_id: int | None = None) -> None:
        self._node_id = node_id
        self._by_index: dict[int, dict[tuple, list[StoredElement]]] = {}
        self._sorted_indices: list[int] = []
        self._key_count = 0
        self._element_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, element: StoredElement) -> None:
        """Insert one element (O(log n) on a new index)."""
        bucket = self._by_index.get(element.index)
        if bucket is None:
            bucket = {}
            self._by_index[element.index] = bucket
            insort(self._sorted_indices, element.index)
        per_key = bucket.get(element.key)
        if per_key is None:
            bucket[element.key] = [element]
            self._key_count += 1
        else:
            per_key.append(element)
        self._element_count += 1
        self._count_added(1)

    def add_sorted_bulk(self, elements: list[StoredElement]) -> None:
        """Bulk insert; amortizes the sorted-index maintenance."""
        for element in elements:
            bucket = self._by_index.get(element.index)
            if bucket is None:
                bucket = {}
                self._by_index[element.index] = bucket
            per_key = bucket.get(element.key)
            if per_key is None:
                bucket[element.key] = [element]
                self._key_count += 1
            else:
                per_key.append(element)
            self._element_count += 1
        self._sorted_indices = sorted(self._by_index)
        self._count_added(len(elements))

    def pop_range(self, low: int, high: int) -> list[StoredElement]:
        """Remove and return every element with index in ``[low, high]``.

        Used when keys are handed to another node (join splits, runtime load
        balancing, virtual-node migration).  Returned in scan order.
        """
        self._check_range(low, high)
        lo_pos = bisect_left(self._sorted_indices, low)
        hi_pos = bisect_right(self._sorted_indices, high)
        moved: list[StoredElement] = []
        for index in self._sorted_indices[lo_pos:hi_pos]:
            bucket = self._by_index.pop(index)
            for per_key in bucket.values():
                moved.extend(per_key)
                self._key_count -= 1
                self._element_count -= len(per_key)
        del self._sorted_indices[lo_pos:hi_pos]
        self._count_moved(len(moved))
        return moved

    def clear(self) -> None:
        self._by_index.clear()
        self._sorted_indices.clear()
        self._key_count = 0
        self._element_count = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _scan_span(self, low: int, high: int) -> Iterator[StoredElement]:
        lo_pos = bisect_left(self._sorted_indices, low)
        hi_pos = bisect_right(self._sorted_indices, high, lo_pos)
        for index in self._sorted_indices[lo_pos:hi_pos]:
            for per_key in self._by_index[index].values():
                yield from per_key

    def has_any_in_range(self, low: int, high: int) -> bool:
        """True if any element index falls in ``[low, high]``."""
        pos = bisect_left(self._sorted_indices, low)
        return pos < len(self._sorted_indices) and self._sorted_indices[pos] <= high

    def all_elements(self) -> Iterator[StoredElement]:
        for index in self._sorted_indices:
            for per_key in self._by_index[index].values():
                yield from per_key

    def indices(self) -> list[int]:
        """Sorted distinct indices present in the store."""
        return list(self._sorted_indices)

    def key_count_at(self, index: int) -> int:
        """Number of distinct keys stored at ``index``."""
        bucket = self._by_index.get(index)
        return len(bucket) if bucket else 0

    def split_point_by_load(self) -> int | None:
        """Index below which about half the keys live (for boundary shifts)."""
        if len(self._sorted_indices) < 2:
            return None
        counted = 0
        half = self._key_count / 2
        for index in self._sorted_indices[:-1]:
            counted += len(self._by_index[index])
            if counted >= half:
                return index
        return self._sorted_indices[-2]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Distinct keyword combinations stored (the paper's load measure)."""
        return self._key_count

    @property
    def element_count(self) -> int:
        return self._element_count

    def memory_bytes(self) -> int:
        """Container-structure estimate: dicts, index list, per-key lists.

        Payload objects are not deep-sized (uniform across backends); the
        per-entry constant approximates dict-entry + list-slot overhead.
        """
        size = sys.getsizeof(self._by_index) + sys.getsizeof(self._sorted_indices)
        size += len(self._sorted_indices) * 96  # bucket dict per distinct index
        size += self._key_count * 120  # dict entry + per-key list header
        size += self._element_count * 64  # list slot + element object header
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalStore(keys={self._key_count}, elements={self._element_count})"
