"""NumPy columnar backend (registry name ``"columnar"``).

Elements live in two parallel columns: a sorted ``int64`` index array and an
object array of :class:`~repro.store.base.StoredElement` references in the
same order.  Range scans are two ``np.searchsorted`` bisections plus a
contiguous slice — no per-index dict hops — which is what makes large
stores (10^5–10^7 resident elements) scan at array speed.

Appends go to an amortized buffer and are merged into the columns every
``merge_every`` inserts (or before any read): the merge is one stable
argsort of the buffer plus one ``np.insert``, so *n* appends cost
``O(n log B + n·merges)`` instead of ``O(n log n)`` list insertions.

Ordering: the columns keep equal-index elements in arrival order (stable
sorts, and merged batches insert *after* existing equals), and scans regroup
each equal-index run by key on the way out — reproducing the
:class:`~repro.store.memory.LocalStore` multimap order exactly (contract
point 2 in :mod:`repro.store.base`).  Runs are almost always length 1
(index collisions come from quantization only), so the regroup is free in
practice.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.store.base import NodeStore, StoredElement, regroup_run

__all__ = ["ColumnarStore"]


class ColumnarStore(NodeStore):
    """Sorted-array columnar store with an amortized append buffer."""

    backend_name = "columnar"

    def __init__(self, node_id: int | None = None, merge_every: int = 4096) -> None:
        self._node_id = node_id
        self._merge_every = max(1, int(merge_every))
        self._idx = np.empty(0, dtype=np.int64)
        self._elems = np.empty(0, dtype=object)
        self._pending: list[StoredElement] = []
        self._element_count = 0
        #: Distinct (index, key) pairs; recomputed lazily after mutations.
        self._key_count_cache: int | None = 0
        self._merges = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, element: StoredElement) -> None:
        self._pending.append(element)
        self._element_count += 1
        self._key_count_cache = None
        if len(self._pending) >= self._merge_every:
            self._merge()
        self._count_added(1)

    def add_sorted_bulk(self, elements: list[StoredElement]) -> None:
        self._pending.extend(elements)
        self._element_count += len(elements)
        self._key_count_cache = None
        self._merge()
        self._count_added(len(elements))

    def pop_range(self, low: int, high: int) -> list[StoredElement]:
        self._check_range(low, high)
        self._merge()
        lo = int(np.searchsorted(self._idx, low, side="left"))
        hi = int(np.searchsorted(self._idx, high, side="right"))
        moved = list(self._iter_runs(lo, hi))
        if moved:
            keep = np.ones(self._idx.size, dtype=bool)
            keep[lo:hi] = False
            self._idx = self._idx[keep]
            self._elems = self._elems[keep]
            self._element_count -= len(moved)
            self._key_count_cache = None
        self._count_moved(len(moved))
        return moved

    def clear(self) -> None:
        self._idx = np.empty(0, dtype=np.int64)
        self._elems = np.empty(0, dtype=object)
        self._pending.clear()
        self._element_count = 0
        self._key_count_cache = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _scan_span(self, low: int, high: int) -> Iterator[StoredElement]:
        self._merge()
        lo = int(np.searchsorted(self._idx, low, side="left"))
        hi = int(np.searchsorted(self._idx, high, side="right"))
        yield from self._iter_runs(lo, hi)

    def has_any_in_range(self, low: int, high: int) -> bool:
        self._merge()
        pos = int(np.searchsorted(self._idx, low, side="left"))
        return pos < self._idx.size and int(self._idx[pos]) <= high

    def all_elements(self) -> Iterator[StoredElement]:
        self._merge()
        yield from self._iter_runs(0, self._idx.size)

    def indices(self) -> list[int]:
        self._merge()
        return [int(v) for v in np.unique(self._idx)]

    def key_count_at(self, index: int) -> int:
        self._merge()
        lo = int(np.searchsorted(self._idx, index, side="left"))
        hi = int(np.searchsorted(self._idx, index, side="right"))
        if hi - lo <= 1:
            return hi - lo
        return len({self._elems[i].key for i in range(lo, hi)})

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        if self._key_count_cache is None:
            self._merge()
            count = 0
            i, n = 0, self._idx.size
            while i < n:
                j = i + 1
                while j < n and self._idx[j] == self._idx[i]:
                    j += 1
                if j - i == 1:
                    count += 1
                else:
                    count += len({self._elems[k].key for k in range(i, j)})
                i = j
            self._key_count_cache = count
        return self._key_count_cache

    @property
    def element_count(self) -> int:
        return self._element_count

    def memory_bytes(self) -> int:
        """Column bytes + buffer slots; element/payload objects not deep-sized."""
        return int(
            self._idx.nbytes
            + self._elems.nbytes
            + len(self._pending) * 72  # list slot + element object header
            + self._elems.size * 56  # element object headers behind the column
        )

    def _stats_detail(self) -> dict:
        return {"pending": len(self._pending), "merges": self._merges}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _merge(self) -> None:
        """Fold the append buffer into the sorted columns (stable)."""
        if not self._pending:
            return
        pend_idx = np.fromiter(
            (e.index for e in self._pending), dtype=np.int64, count=len(self._pending)
        )
        order = np.argsort(pend_idx, kind="stable")
        pend_idx = pend_idx[order]
        pend_elems = np.empty(len(self._pending), dtype=object)
        pend_elems[:] = self._pending
        pend_elems = pend_elems[order]
        if self._idx.size == 0:
            self._idx, self._elems = pend_idx, pend_elems
        else:
            # side="right": new arrivals land after existing equals, keeping
            # arrival order within an index across merges.
            pos = np.searchsorted(self._idx, pend_idx, side="right")
            self._idx = np.insert(self._idx, pos, pend_idx)
            self._elems = np.insert(self._elems, pos, pend_elems)
        self._pending.clear()
        self._merges += 1

    def _iter_runs(self, lo: int, hi: int) -> Iterator[StoredElement]:
        """Yield ``self._elems[lo:hi]`` regrouping equal-index runs by key."""
        idx = self._idx
        elems = self._elems
        i = lo
        while i < hi:
            j = i + 1
            while j < hi and idx[j] == idx[i]:
                j += 1
            if j - i == 1:
                yield elems[i]
            else:
                yield from regroup_run([elems[k] for k in range(i, j)])
            i = j
