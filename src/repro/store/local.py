"""Deprecated import path — use :mod:`repro.store` instead.

``LocalStore`` moved to :mod:`repro.store.memory` when the data plane became
pluggable; this shim keeps ``from repro.store.local import LocalStore``
working (same class, same constructor) while steering imports to the
package root, where backends are selected by name via
:func:`repro.store.get_store`.
"""

from __future__ import annotations

import warnings

from repro.store.base import StoredElement
from repro.store.memory import LocalStore

__all__ = ["LocalStore", "StoredElement"]

warnings.warn(
    "repro.store.local is deprecated; import LocalStore/StoredElement from "
    "repro.store (or select backends by name via repro.store.get_store)",
    DeprecationWarning,
    stacklevel=2,
)
