"""Per-node local data store.

Each overlay node stores the data elements whose curve index falls in its
``(predecessor, node]`` range.  The store keeps elements sorted by index so
cluster processing can range-scan exactly the candidate indices; exact-match
filtering against the original keyword tuples happens above, in the engine.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import StoreError
from repro.obs import metrics as obs_metrics

__all__ = ["StoredElement", "LocalStore"]


@dataclass(frozen=True)
class StoredElement:
    """A data element at rest: its curve index, keyword tuple, and payload."""

    index: int
    key: tuple[Any, ...]
    payload: Any = None


class LocalStore:
    """Sorted multimap ``index -> {key -> [elements]}``.

    *Keys* (unique keyword combinations, the paper's load unit) may collide
    on an index (quantization); *elements* (documents/resources) may share a
    key.  Load-balancing moves whole index ranges between stores.
    """

    def __init__(self) -> None:
        self._by_index: dict[int, dict[tuple, list[StoredElement]]] = {}
        self._sorted_indices: list[int] = []
        self._key_count = 0
        self._element_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, element: StoredElement) -> None:
        """Insert one element (O(log n) on a new index)."""
        bucket = self._by_index.get(element.index)
        if bucket is None:
            bucket = {}
            self._by_index[element.index] = bucket
            insort(self._sorted_indices, element.index)
        per_key = bucket.get(element.key)
        if per_key is None:
            bucket[element.key] = [element]
            self._key_count += 1
        else:
            per_key.append(element)
        self._element_count += 1
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.elements_added").inc()

    def add_sorted_bulk(self, elements: list[StoredElement]) -> None:
        """Bulk insert; amortizes the sorted-index maintenance."""
        for element in elements:
            bucket = self._by_index.get(element.index)
            if bucket is None:
                bucket = {}
                self._by_index[element.index] = bucket
            per_key = bucket.get(element.key)
            if per_key is None:
                bucket[element.key] = [element]
                self._key_count += 1
            else:
                per_key.append(element)
            self._element_count += 1
        self._sorted_indices = sorted(self._by_index)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.elements_added").inc(len(elements))

    def pop_range(self, low: int, high: int) -> list[StoredElement]:
        """Remove and return every element with index in ``[low, high]``.

        Used when keys are handed to another node (join splits, runtime load
        balancing, virtual-node migration).
        """
        if low > high:
            raise StoreError(f"invalid range [{low}, {high}]")
        lo_pos = bisect_left(self._sorted_indices, low)
        hi_pos = bisect_right(self._sorted_indices, high)
        moved: list[StoredElement] = []
        for index in self._sorted_indices[lo_pos:hi_pos]:
            bucket = self._by_index.pop(index)
            for per_key in bucket.values():
                moved.extend(per_key)
                self._key_count -= 1
                self._element_count -= len(per_key)
        del self._sorted_indices[lo_pos:hi_pos]
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.elements_moved").inc(len(moved))
        return moved

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def scan_range(self, low: int, high: int) -> Iterator[StoredElement]:
        """Yield elements with index in ``[low, high]`` in index order."""
        if low > high:
            return
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("store.range_scans").inc()
        lo_pos = bisect_left(self._sorted_indices, low)
        hi_pos = bisect_right(self._sorted_indices, high)
        for index in self._sorted_indices[lo_pos:hi_pos]:
            for per_key in self._by_index[index].values():
                yield from per_key

    def scan_ranges(self, ranges) -> Iterator[StoredElement]:
        """Yield elements across several index ranges in one sorted pass.

        ``ranges`` must be sorted by ``low`` — as a cluster's piece list
        always is — so each bisection can resume from the previous range's
        end position instead of restarting from the front of the index
        list.  Overlapping ranges are tolerated (an element is yielded once
        per range containing it, matching repeated :meth:`scan_range`
        calls); the common disjoint-ranges case never rescans an index.
        Counts a single ``store.range_scans`` metric for the whole batch.
        """
        si = self._sorted_indices
        counted = False
        pos = 0
        prev_high: int | None = None
        reg = obs_metrics.active()
        for low, high in ranges:
            if low > high:
                continue
            if not counted:
                counted = True
                if reg is not None:
                    reg.counter("store.range_scans").inc()
            # Resuming at the previous end position is sound only when every
            # index before it is < low, i.e. when the ranges don't overlap.
            hint = pos if prev_high is not None and low > prev_high else 0
            lo_pos = bisect_left(si, low, hint)
            hi_pos = bisect_right(si, high, lo_pos)
            for index in si[lo_pos:hi_pos]:
                for per_key in self._by_index[index].values():
                    yield from per_key
            pos = hi_pos
            prev_high = high if prev_high is None else max(prev_high, high)

    def has_any_in_range(self, low: int, high: int) -> bool:
        """True if any element index falls in ``[low, high]``."""
        pos = bisect_left(self._sorted_indices, low)
        return pos < len(self._sorted_indices) and self._sorted_indices[pos] <= high

    def all_elements(self) -> Iterator[StoredElement]:
        for index in self._sorted_indices:
            for per_key in self._by_index[index].values():
                yield from per_key

    def indices(self) -> list[int]:
        """Sorted distinct indices present in the store."""
        return list(self._sorted_indices)

    def key_count_at(self, index: int) -> int:
        """Number of distinct keys stored at ``index``."""
        bucket = self._by_index.get(index)
        return len(bucket) if bucket else 0

    def split_point_by_load(self) -> int | None:
        """Index below which about half the keys live (for boundary shifts).

        Returns the index such that handing ``[min_index, result]`` away
        moves roughly half this store's keys; ``None`` when the store holds
        fewer than two distinct indices.
        """
        if len(self._sorted_indices) < 2:
            return None
        counted = 0
        half = self._key_count / 2
        for index in self._sorted_indices[:-1]:
            counted += len(self._by_index[index])
            if counted >= half:
                return index
        return self._sorted_indices[-2]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Distinct keyword combinations stored (the paper's load measure)."""
        return self._key_count

    @property
    def element_count(self) -> int:
        return self._element_count

    def __len__(self) -> int:
        return self._element_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalStore(keys={self._key_count}, elements={self._element_count})"
