"""Lightweight phase profiling for the hot SFC encode/refine paths.

A :class:`PhaseProfiler` accumulates wall-time and call counts per named
phase.  The hot paths (``sfc.encode``, ``sfc.refine``, ``sfc.resolve``,
``engine.scan``) carry permanent hooks that check the module-level active
profiler once per call and do nothing when profiling is disabled (the
default), so tier-1 benchmarks are unaffected.

Usage::

    from repro.obs import profiling

    with profiling() as profiler:
        system.query("(comp*, *)")
    print(profiler.to_text())

or imperatively via :func:`enable_profiling` / :func:`disable_profiling`.
``python -m repro run/report --profile`` surfaces the same table after an
experiment run.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "PhaseProfiler",
    "enable_profiling",
    "disable_profiling",
    "active_profiler",
    "profiling",
]


class PhaseProfiler:
    """Per-phase wall-time and call-count accumulator."""

    def __init__(self) -> None:
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def record(self, phase: str, seconds: float) -> None:
        self._calls[phase] = self._calls.get(phase, 0) + 1
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (composable with the built-in hooks)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.record(name, perf_counter() - start)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{phase: {"calls": n, "seconds": s}}`` with sorted phase names."""
        return {
            name: {"calls": self._calls[name], "seconds": self._seconds[name]}
            for name in sorted(self._calls)
        }

    def to_text(self) -> str:
        """Aligned table of phases, call counts, and wall time."""
        rows = self.snapshot()
        if not rows:
            return "(no profiled phases)"
        width = max(len(name) for name in rows)
        lines = [f"{'phase':<{width}}  {'calls':>10}  {'seconds':>10}"]
        for name, row in rows.items():
            lines.append(
                f"{name:<{width}}  {row['calls']:>10d}  {row['seconds']:>10.4f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._calls.clear()
        self._seconds.clear()


#: The active profiler; hot-path hooks check this and no-op when ``None``.
_PROFILER: PhaseProfiler | None = None


def enable_profiling(profiler: PhaseProfiler | None = None) -> PhaseProfiler:
    """Install (and return) the active profiler."""
    global _PROFILER
    _PROFILER = profiler if profiler is not None else PhaseProfiler()
    return _PROFILER


def disable_profiling() -> PhaseProfiler | None:
    """Detach the active profiler; returns it (with its collected data)."""
    global _PROFILER
    profiler = _PROFILER
    _PROFILER = None
    return profiler


def active_profiler() -> PhaseProfiler | None:
    """The active profiler, or ``None`` when profiling is disabled."""
    return _PROFILER


@contextmanager
def profiling(profiler: PhaseProfiler | None = None) -> Iterator[PhaseProfiler]:
    """Scope with profiling enabled; restores the previous state on exit."""
    global _PROFILER
    previous = _PROFILER
    prof = enable_profiling(profiler)
    try:
        yield prof
    finally:
        _PROFILER = previous
