"""Process-wide metrics registry: counters, gauges, histograms.

Components across the stack — the query engines, :class:`ChordRing`
routing, :class:`LocalStore`, load balancing, replication, and the caching
layer — report into the *active* registry when one is attached.  With no
registry attached (the default) every report site reduces to one ``None``
check, so the instrumentation is free on the benchmark paths.

Usage::

    from repro.obs import MetricsRegistry, set_registry

    registry = MetricsRegistry()
    set_registry(registry)
    ...  # run queries, churn, load balancing
    snapshot = registry.snapshot()      # deterministic, sorted dict
    set_registry(None)                  # detach

or, scoped::

    from repro.obs import collecting
    with collecting() as registry:
        system.query("(comp*, *)")
    print(registry.snapshot()["counters"]["overlay.routes"])

Snapshots are plain nested dictionaries with sorted keys: two identical
(seeded) runs produce byte-identical snapshots, which tests rely on.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "set_registry",
    "get_registry",
    "active",
    "collecting",
]

#: Default histogram bucket upper bounds (inclusive); a final overflow
#: bucket catches everything larger.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000, 10000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        buckets = {f"<={b:g}": c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, count={self.count}, mean={self.mean:.2f})"


class MetricsRegistry:
    """Named counters/gauges/histograms with deterministic snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All metrics as a nested dict with sorted keys (deterministic)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def to_text(self) -> str:
        """Aligned one-metric-per-line rendering of a snapshot."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<40s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<40s} {value:g}")
        for name, h in snap["histograms"].items():
            lines.append(
                f"{name:<40s} count={h['count']} sum={h['sum']:g} "
                f"min={h['min']} max={h['max']}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# ----------------------------------------------------------------------
# The process-wide active registry
# ----------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the active one; returns the previous."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metrics are detached."""
    return _REGISTRY


#: Alias used by instrumentation sites (``reg = active()``; skip if None).
active = get_registry


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scope with a registry attached; restores the previous one on exit."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)
