"""Process-wide metrics registry: counters, gauges, histograms.

Components across the stack — the query engines, :class:`ChordRing`
routing, :class:`LocalStore`, load balancing, replication, and the caching
layer — report into the *active* registry when one is attached.  With no
registry attached (the default) every report site reduces to one ``None``
check, so the instrumentation is free on the benchmark paths.

Usage::

    from repro.obs import MetricsRegistry, set_registry

    registry = MetricsRegistry()
    set_registry(registry)
    ...  # run queries, churn, load balancing
    snapshot = registry.snapshot()      # deterministic, sorted dict
    set_registry(None)                  # detach

or, scoped::

    from repro.obs import collecting
    with collecting() as registry:
        system.query("(comp*, *)")
    print(registry.snapshot()["counters"]["overlay.routes"])

Snapshots are plain nested dictionaries with sorted keys: two identical
(seeded) runs produce byte-identical snapshots, which tests rely on.

Snapshots are also *mergeable*: :meth:`RegistrySnapshot.merge` combines the
metrics of independent runs (counters and histogram buckets add, gauges
take the right-hand value, histogram min/max widen), which is how the
parallel query pool (:mod:`repro.exec`) reduces per-worker registries into
one report.  Merging is associative, so any grouping of workers produces
the same totals.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "merge_snapshots",
    "set_registry",
    "get_registry",
    "active",
    "collecting",
]

#: Default histogram bucket upper bounds (inclusive); a final overflow
#: bucket catches everything larger.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000, 10000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        buckets = {f"<={b:g}": c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, count={self.count}, mean={self.mean:.2f})"


class RegistrySnapshot(dict):
    """One registry's metrics as a nested dict, plus merge semantics.

    A plain ``dict`` subclass (``{"counters": ..., "gauges": ...,
    "histograms": ...}``) so existing snapshot consumers keep working;
    :meth:`merge` adds the combination rules used to reduce per-worker
    registries into a single report:

    * **counters** — summed;
    * **gauges** — the right-hand (later) snapshot wins, mirroring the
      registry's own last-write-wins rule;
    * **histograms** — bucket counts, ``count`` and ``sum`` add; ``min``
      and ``max`` widen (``None``-aware).

    Merging is associative and the key order of the result is sorted, so
    reducing worker snapshots in chunk order is deterministic regardless
    of how many workers produced them.
    """

    @staticmethod
    def _merge_histogram(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
        buckets = dict(left["buckets"])
        for label, count in right["buckets"].items():
            buckets[label] = buckets.get(label, 0) + count
        mins = [m for m in (left["min"], right["min"]) if m is not None]
        maxes = [m for m in (left["max"], right["max"]) if m is not None]
        return {
            "count": left["count"] + right["count"],
            "sum": left["sum"] + right["sum"],
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "buckets": buckets,
        }

    def merge(self, other: dict[str, Any]) -> "RegistrySnapshot":
        """A new snapshot combining ``self`` with ``other`` (see class doc)."""
        counters = dict(self.get("counters", {}))
        for name, value in other.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.get("gauges", {}))
        gauges.update(other.get("gauges", {}))
        histograms = {n: dict(h, buckets=dict(h["buckets"])) for n, h in self.get("histograms", {}).items()}
        for name, hist in other.get("histograms", {}).items():
            if name in histograms:
                histograms[name] = self._merge_histogram(histograms[name], hist)
            else:
                histograms[name] = dict(hist, buckets=dict(hist["buckets"]))
        return RegistrySnapshot(
            {
                "counters": dict(sorted(counters.items())),
                "gauges": dict(sorted(gauges.items())),
                "histograms": dict(sorted(histograms.items())),
            }
        )


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> RegistrySnapshot:
    """Reduce an iterable of snapshots into one (order matters for gauges)."""
    merged = RegistrySnapshot({"counters": {}, "gauges": {}, "histograms": {}})
    for snap in snapshots:
        merged = merged.merge(snap)
    return merged


class MetricsRegistry:
    """Named counters/gauges/histograms with deterministic snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> RegistrySnapshot:
        """All metrics as a nested dict with sorted keys (deterministic).

        The returned :class:`RegistrySnapshot` is a ``dict`` subclass, so
        it indexes and compares exactly like the plain dictionaries earlier
        versions returned, and additionally supports :meth:`RegistrySnapshot.merge`.
        """
        return RegistrySnapshot(
            {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.snapshot() for n, h in sorted(self._histograms.items())
                },
            }
        )

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a snapshot's totals into this live registry.

        Used to surface a parallel batch's merged worker metrics in the
        caller's active registry: counters increment, gauges overwrite, and
        histogram buckets are replayed (bucket bounds are recovered from
        the snapshot's ``<=B`` labels, so only histograms snapshotted by
        this module merge back).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in snap.get("histograms", {}).items():
            labels = [b for b in hist["buckets"] if b != "inf"]
            bounds = tuple(float(label[2:]) for label in labels)
            target = self.histogram(name, bounds or DEFAULT_BUCKETS)
            if tuple(f"<={b:g}" for b in target.bounds) != tuple(labels):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ from the snapshot's"
                )
            for pos, label in enumerate(list(labels) + ["inf"]):
                target.bucket_counts[pos] += hist["buckets"][label]
            target.count += hist["count"]
            target.total += hist["sum"]
            for bound_attr, pick in (("min", min), ("max", max)):
                incoming = hist[bound_attr]
                if incoming is not None:
                    current = getattr(target, bound_attr)
                    setattr(
                        target,
                        bound_attr,
                        incoming if current is None else pick(current, incoming),
                    )

    def to_text(self) -> str:
        """Aligned one-metric-per-line rendering of a snapshot."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<40s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<40s} {value:g}")
        for name, h in snap["histograms"].items():
            lines.append(
                f"{name:<40s} count={h['count']} sum={h['sum']:g} "
                f"min={h['min']} max={h['max']}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# ----------------------------------------------------------------------
# The process-wide active registry
# ----------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the active one; returns the previous."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metrics are detached."""
    return _REGISTRY


#: Alias used by instrumentation sites (``reg = active()``; skip if None).
active = get_registry


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scope with a registry attached; restores the previous one on exit."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)
