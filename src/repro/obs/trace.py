"""Structured query-path tracing.

The paper's evaluation is all about *where* cost arises during distributed
query refinement (§3.4): which node refined which cluster, which messages
were sent, where the query tree was pruned and where sibling sub-clusters
were aggregated into one batch.  :class:`QueryTrace` captures exactly that
as a tree of **spans** — one span per (node, cluster) processing event,
linked to the span that dispatched it — each carrying typed events:

* :class:`ClusterRefined` — a node expanded a cluster into sub-clusters;
* :class:`MessageSent` — a routed sub-query, identity reply, aggregated
  batch, or direct hand-off left a node;
* :class:`Pruned` — the query tree terminated at this span (the node owned
  the whole remainder, the remainder was empty, or discovery mode stopped);
* :class:`Aggregated` — sibling sub-clusters travelled as one batch;
* :class:`LocalScan` — a node searched its local store;
* :class:`BranchLost` — fault injection defeated the retry policy and the
  sub-query was abandoned (its curve ranges appear in
  ``QueryResult.unresolved_ranges``);
* :class:`BranchShed` — an overloaded node's
  :class:`~repro.guard.GuardPlane` refused the sub-query; like a lost
  branch, its curve ranges land in ``QueryResult.unresolved_ranges`` and
  the result is an honest ``complete=False`` partial.

System-lifecycle events (:class:`KeyMoved`, :class:`NodeJoined`,
:class:`NodeLeft`) are recorded on the :class:`Tracer` itself, outside any
query trace.

A trace reconstructs the full refinement tree (:meth:`QueryTrace.to_tree`,
:meth:`QueryTrace.render`, :meth:`QueryTrace.to_json`) and its
:meth:`QueryTrace.totals` agree *exactly* with the
:class:`~repro.core.metrics.QueryStats` of the same execution — the
benchmark numbers and the trace are two views of one accounting.

Tracing is opt-in: engines consult ``system.tracer`` and skip every trace
call when it is ``None`` (the default), so untraced queries pay nothing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

__all__ = [
    "ClusterRefined",
    "MessageSent",
    "Pruned",
    "Aggregated",
    "LocalScan",
    "BranchLost",
    "BranchShed",
    "KeyMoved",
    "NodeJoined",
    "NodeLeft",
    "Span",
    "QueryTrace",
    "Tracer",
]


# ----------------------------------------------------------------------
# Typed events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterRefined:
    """A node expanded a cluster: ``children`` sub-clusters were produced."""

    node_id: int
    level: int
    children: int


@dataclass(frozen=True)
class MessageSent:
    """One logical message (mirrors ``QueryStats.messages`` one-for-one).

    ``kind`` is one of ``"probe"`` (routed head of an aggregated group),
    ``"routed"`` (an unaggregated routed sub-query), ``"reply"`` (the
    destination's identity reply enabling aggregation), ``"batch"`` (the
    batched siblings, sent directly), ``"handoff"`` (naive engine's
    successor-chain hand-off), ``"cache"`` (cache-layer traffic).
    ``hops`` is the wire-level hop count charged; ``path`` the overlay path
    for routed messages (``None`` for direct ones).
    """

    src: int
    dest: int
    kind: str
    hops: int
    path: tuple[int, ...] | None = None


@dataclass(frozen=True)
class Pruned:
    """The refinement tree terminated at this span.

    ``reason``: ``"owned"`` — the node owns the cluster's whole remaining
    index range (the paper's pruning optimization); ``"empty"`` — refining
    the remainder produced nothing; ``"limit"`` — discovery mode stopped the
    fan-out.
    """

    node_id: int
    level: int
    reason: str


@dataclass(frozen=True)
class Aggregated:
    """``batch_size`` sibling sub-clusters travelled to ``dest`` together."""

    node_id: int
    dest: int
    batch_size: int


@dataclass(frozen=True)
class LocalScan:
    """A node searched its store over ``ranges`` index ranges; ``found`` hits."""

    node_id: int
    ranges: int
    found: int


@dataclass(frozen=True)
class BranchLost:
    """Fault injection swallowed this sub-query despite the retry policy.

    ``node_id`` is the destination that could not be reached; ``ranges``
    counts the unresolved index ranges recorded for the lost cluster.  A
    span carrying this event is a *lost* branch, not a discovery-mode abort:
    its message really travelled (and is counted), but its work never
    happened and never will.
    """

    node_id: int
    level: int
    ranges: int


@dataclass(frozen=True)
class BranchShed:
    """An overloaded node shed this sub-query instead of processing it.

    ``node_id`` is the node whose load guard refused the work; ``ranges``
    counts the unresolved index ranges recorded for the shed cluster.
    The dispatch message really travelled (and is counted) but the work
    was deliberately not done — the honest-load-shedding counterpart of
    :class:`BranchLost`.
    """

    node_id: int
    level: int
    ranges: int


@dataclass(frozen=True)
class KeyMoved:
    """``count`` keys moved between stores (join/leave/load-balancing)."""

    src: int
    dest: int
    count: int


@dataclass(frozen=True)
class NodeJoined:
    """A node joined the overlay (graceful membership change)."""

    node_id: int


@dataclass(frozen=True)
class NodeLeft:
    """A node left the overlay gracefully (its keys moved first)."""

    node_id: int


#: Events that may appear inside a query trace span.
SpanEvent = (
    ClusterRefined
    | MessageSent
    | Pruned
    | Aggregated
    | LocalScan
    | BranchLost
    | BranchShed
)
#: Events recorded on the tracer itself (system lifecycle).
SystemEvent = KeyMoved | NodeJoined | NodeLeft


# ----------------------------------------------------------------------
# Spans and traces
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One processing event: a node handling one (sub-)cluster.

    ``parent_id`` links to the span that dispatched this cluster (``None``
    for the query root at the initiator); the links reconstruct the paper's
    query refinement tree (Figure 8).
    """

    span_id: int
    parent_id: int | None
    node_id: int
    level: int
    events: list[SpanEvent] = field(default_factory=list)

    def events_of(self, event_type: type) -> list[SpanEvent]:
        return [e for e in self.events if isinstance(e, event_type)]


class QueryTrace:
    """The recorded refinement tree of a single query execution."""

    def __init__(self, query: str, origin: int) -> None:
        self.query = query
        self.origin = origin
        self.spans: list[Span] = []
        self._children: dict[int, list[int]] = {}

    # -- recording (engine-facing) -------------------------------------
    def new_span(self, parent_id: int | None, node_id: int, level: int) -> int:
        span_id = len(self.spans)
        self.spans.append(Span(span_id, parent_id, node_id, level))
        if parent_id is not None:
            self._children.setdefault(parent_id, []).append(span_id)
        return span_id

    def emit(self, span_id: int, event: SpanEvent) -> None:
        self.spans[span_id].events.append(event)

    def reassign(self, span_id: int, node_id: int) -> None:
        """Repoint a span at a different processing node.

        Used by resilient execution when a queued sub-query's destination
        crashed before processing it and the work was redelivered to the
        new owner — the span was opened at dispatch time, before the crash
        was known.
        """
        self.spans[span_id].node_id = node_id

    # -- reconstruction -------------------------------------------------
    @property
    def root(self) -> Span:
        return self.spans[0]

    def children(self, span_id: int) -> list[Span]:
        return [self.spans[i] for i in self._children.get(span_id, [])]

    def iter_events(self) -> Iterator[tuple[Span, SpanEvent]]:
        for span in self.spans:
            for event in span.events:
                yield span, event

    def events_of(self, event_type: type) -> list[SpanEvent]:
        return [e for _, e in self.iter_events() if isinstance(e, event_type)]

    def to_tree(self) -> dict[str, Any]:
        """The refinement tree as nested dictionaries (JSON-ready)."""

        def event(e: SpanEvent) -> dict[str, Any]:
            data = {"type": type(e).__name__, **asdict(e)}
            if isinstance(data.get("path"), tuple):
                data["path"] = list(data["path"])
            return data

        def node(span: Span) -> dict[str, Any]:
            return {
                "span": span.span_id,
                "node": span.node_id,
                "level": span.level,
                "events": [event(e) for e in span.events],
                "children": [node(c) for c in self.children(span.span_id)],
            }

        return {
            "query": self.query,
            "origin": self.origin,
            "tree": node(self.root) if self.spans else None,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_tree(), indent=indent)

    def render(self) -> str:
        """Human-readable indented rendering of the refinement tree."""
        lines = [f"query {self.query!r} from node {self.origin}"]

        def walk(span: Span, depth: int) -> None:
            scans = span.events_of(LocalScan)
            found = sum(e.found for e in scans)
            msgs = len(span.events_of(MessageSent))
            pruned = span.events_of(Pruned)
            lost = span.events_of(BranchLost)
            shed = span.events_of(BranchShed)
            tags = []
            if found:
                tags.append(f"found={found}")
            if msgs:
                tags.append(f"msgs={msgs}")
            if pruned:
                tags.append(f"pruned:{pruned[0].reason}")
            if lost:
                tags.append("lost")
            if shed:
                tags.append("shed")
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            lines.append(
                f"{'  ' * depth}- node {span.node_id} (level {span.level})"
                f"{suffix}"
            )
            for child in self.children(span.span_id):
                walk(child, depth + 1)

        if self.spans:
            walk(self.root, 1)
        return "\n".join(lines)

    # -- accounting ------------------------------------------------------
    def totals(self) -> dict[str, Any]:
        """Aggregate the trace back into ``QueryStats``-equivalent totals.

        ``messages``/``hops`` sum the :class:`MessageSent` events; the node
        sets are derived from spans, scan hits, and message paths.  Tests
        assert these equal the live :class:`~repro.core.metrics.QueryStats`
        of the same run — the trace is a lossless decomposition of the
        flat counters.
        """
        messages = 0
        hops = 0
        routing: set[int] = set()
        processing: set[int] = set()
        data: set[int] = set()
        pruned = 0
        batches = 0
        aborted = 0
        lost = 0
        shed = 0
        for span, event in self.iter_events():
            if isinstance(event, MessageSent):
                messages += 1
                hops += event.hops
                if event.path is not None:
                    routing.update(event.path)
            elif isinstance(event, LocalScan):
                if event.found:
                    data.add(event.node_id)
            elif isinstance(event, Pruned):
                pruned += 1
            elif isinstance(event, Aggregated):
                batches += 1
            elif isinstance(event, BranchShed):
                shed += 1
        for span in self.spans:
            routing.add(span.node_id)
            # A span whose node never scanned or refined was dispatched but
            # abandoned: a fault-injected *lost* branch when it carries a
            # BranchLost event, a deliberately *shed* branch when it carries
            # a BranchShed event (counted above, one per event), and a
            # discovery-mode early exit otherwise.  Its message is counted
            # either way; its processing never happened.
            if any(
                isinstance(e, (LocalScan, ClusterRefined)) for e in span.events
            ):
                processing.add(span.node_id)
            elif any(isinstance(e, BranchLost) for e in span.events):
                lost += 1
            elif not any(isinstance(e, BranchShed) for e in span.events):
                aborted += 1
        return {
            "messages": messages,
            "hops": hops,
            "routing_nodes": routing,
            "processing_nodes": processing,
            "data_nodes": data,
            "pruned_branches": pruned,
            "aggregated_batches": batches,
            "aborted_in_flight": aborted,
            "lost_branches": lost,
            "shed_branches": shed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTrace(query={self.query!r}, spans={len(self.spans)})"


class Tracer:
    """Collects query traces and system lifecycle events.

    Attach with :meth:`SquidSystem.attach_tracer`; every subsequent query
    produces a :class:`QueryTrace` (also exposed as ``result.trace``), and
    membership/key-movement operations append :data:`SystemEvent` records.
    """

    def __init__(self, keep: int | None = None) -> None:
        #: Bound on retained query traces (oldest dropped); None = unbounded.
        self.keep = keep
        self.traces: list[QueryTrace] = []
        self.system_events: list[SystemEvent] = []

    def begin(self, query: str, origin: int) -> QueryTrace:
        """Open a trace for one query execution (called by the engines)."""
        trace = QueryTrace(query, origin)
        self.traces.append(trace)
        if self.keep is not None and len(self.traces) > self.keep:
            del self.traces[: len(self.traces) - self.keep]
        return trace

    def record(self, event: SystemEvent) -> None:
        """Record a system lifecycle event (join/leave/key movement)."""
        self.system_events.append(event)

    @property
    def last(self) -> QueryTrace | None:
        """The most recent query trace, if any."""
        return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        self.traces.clear()
        self.system_events.clear()
