"""Observability: structured tracing, metrics registry, phase profiling.

Three independent, individually opt-in facilities:

* :mod:`repro.obs.trace` — per-query refinement-tree traces with typed
  events; attach a :class:`Tracer` to a system and read
  ``result.trace.to_tree()``;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms that the engines, overlay, stores, load
  balancer, replication, and cache layer report into;
* :mod:`repro.obs.profile` — wall-time/call-count profiling of the hot SFC
  encode/refine paths (``python -m repro report --profile``).

All three are zero-cost no-ops when detached (the default).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    active,
    collecting,
    get_registry,
    merge_snapshots,
    set_registry,
)
from repro.obs.profile import (
    PhaseProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiling,
)
from repro.obs.trace import (
    Aggregated,
    BranchLost,
    ClusterRefined,
    KeyMoved,
    LocalScan,
    MessageSent,
    NodeJoined,
    NodeLeft,
    Pruned,
    QueryTrace,
    Span,
    Tracer,
)

__all__ = [
    "Tracer",
    "QueryTrace",
    "Span",
    "ClusterRefined",
    "MessageSent",
    "Pruned",
    "Aggregated",
    "LocalScan",
    "BranchLost",
    "KeyMoved",
    "NodeJoined",
    "NodeLeft",
    "MetricsRegistry",
    "RegistrySnapshot",
    "merge_snapshots",
    "Counter",
    "Gauge",
    "Histogram",
    "set_registry",
    "get_registry",
    "active",
    "collecting",
    "PhaseProfiler",
    "enable_profiling",
    "disable_profiling",
    "active_profiler",
    "profiling",
]
