"""Seeded micro/macro benchmarks of the query hot path.

Three suites, each deterministic given a seed:

``encode``
    Bulk encode/decode throughput: the scalar per-point loop vs. the
    vectorized ``encode_many``/``decode_many`` fast path, per curve family.
``refine``
    The refinement kernel microbenchmark: :func:`repro.sfc.resolve_clusters`
    with the NumPy kernel disabled vs. enabled, over a seeded suite of
    range- and wildcard-shaped regions (d = 2–3, order ≥ 8).
``e2e``
    End-to-end query latency by query class (exact / prefix / wildcard /
    range) on a live seeded system, for both engines: the *baseline* mode
    (scalar refinement, no plan cache) vs. the *optimized* mode (vectorized
    kernel + warm plan cache — the steady state of a repeated-query
    workload).  Match sets are asserted identical between modes.
``parallel``
    Batch query throughput: one mixed-class query batch executed serially
    (``workers=1``) and through the multiprocess pool
    (:meth:`SquidSystem.query_many` with ``--workers`` N).  Per-query
    results, merged stats, and merged metrics are asserted byte-identical
    between the two runs; the row records both wall times, the speedup,
    and the machine's CPU count (speedup is bounded by physical cores —
    on a single-core host the pooled run only adds process overhead).
``resilience``
    Execution under an injected fault plane.  First the zero-fault
    identity guard: an engine carrying an all-zero-rate
    :class:`~repro.faults.FaultPlane` (plus retry policy and replication
    manager) must be bit-identical — per-query match payloads, per-query
    stats dicts, and collected metric snapshots — to a plain engine.
    Then one row per mitigation (none / retry / retry+replication) at a
    fixed message-drop rate, recording recall, completeness, and the
    retry/failover accounting.
``store``
    The data plane: one row per node-store backend (``local`` /
    ``columnar`` / ``sqlite``), publishing a seeded corpus into a ring
    (5k nodes and 10^6 keys at full scale) and range-scanning it back —
    publish and scan throughput, process RSS, and the stores' own
    footprint accounting.  A window-scan guard asserts every backend
    returns byte-identical scan output (elements *and* order) to
    ``local``, the contract-defining backend.
``trace``
    Skewed trace replay: a Zipf-popularity query trace with bursts and a
    1% publish mix (:mod:`repro.workloads.trace`) replayed op-for-op on
    twin systems — result cache off vs on.  Every query op's match set is
    asserted identical between the twins (publishes invalidate, so a
    cached run must never serve a stale answer), and the row records the
    hit rate, messages saved, and the median per-query speedup.
``serve``
    The serving layer end to end: a :class:`~repro.net.server.QueryServer`
    on an :class:`~repro.net.transport.AsyncioTransport` (with a simulated
    per-message wire delay) replays the same skewed request list closed-loop
    with 1 client and with 16 concurrent clients, recording QPS and
    p50/p95/p99 latency.  Two hard guards: every served answer must be
    bit-identical to the in-process :meth:`SquidSystem.query` answer on a
    twin system (JSON-canonical compare of matches + completeness), and the
    16-client run must beat the 1-client run's throughput.
``overload``
    The overload-protection plane.  Zero-overload bit-identity first: an
    engine carrying an armed-but-generous :class:`~repro.guard.GuardPlane`
    must produce byte-identical matches, stats, and metric snapshots to a
    plain engine — and layered on a *faulty* engine it must leave the fault
    plane's RNG stream untouched (same drops, same retries, same partial
    results).  Then a deterministic honest-shedding row (a throttled
    engine returns a certain subset with ``complete=False`` and counted
    ``shed_branches``), and the serving legs: open-loop replay at >= 4x
    the measured closed-loop capacity against an unguarded server (answers
    arrive but late) vs. a guarded one (bounded front door + guard plane:
    clean 429s, bounded tails).  Hard guards: the guarded leg must win on
    **both** p99 latency and goodput (complete, in-deadline answers/sec),
    a calm below-watermark leg through the guarded server must show zero
    rejections/sheds and answer-identity to an in-process twin, and a
    chaos leg (fault plane + guards under the same overload) must produce
    zero 5xx and zero hard errors.

Timings use ``time.perf_counter`` best-of-``repeats``; the harness is not a
statistics package — it exists so a regression (or a win) in the hot path
shows up as a number in version control, not as an anecdote.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
from time import perf_counter
from typing import Any, Callable

import numpy as np

from repro.core.plancache import PlanCache
from repro.keywords.dimensions import NumericDimension, WordDimension
from repro.keywords.space import KeywordSpace
from repro.sfc import make_curve
from repro.sfc.clusters import resolve_clusters, vectorized_refinement
from repro.sfc.regions import Region
from repro.util.stats import percentile

__all__ = [
    "SCHEMA",
    "bench_encode",
    "bench_refine",
    "bench_e2e",
    "bench_parallel",
    "bench_resilience",
    "bench_store",
    "bench_trace",
    "bench_serve",
    "bench_overload",
    "run_bench",
    "write_bench_json",
    "SUITES",
]

#: Version tag of the JSON document layout; bump on breaking changes.
SCHEMA = "squid-bench.query_path/1"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best (minimum) wall time of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Suite: encode / decode throughput
# ----------------------------------------------------------------------
def bench_encode(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Scalar-loop vs. vectorized bulk encode/decode, per curve family."""
    n_points = 2_000 if quick else 20_000
    repeats = 1 if quick else 3
    geometries = [(2, 10), (3, 8)] if not quick else [(2, 8)]
    rng = np.random.default_rng(seed)
    rows: list[dict[str, Any]] = []
    for curve_name in ("hilbert", "zorder", "onion"):
        for dims, order in geometries:
            curve = make_curve(curve_name, dims, order)
            points = rng.integers(0, curve.side, size=(n_points, dims), dtype=np.int64)
            point_list = [tuple(int(c) for c in row) for row in points]

            def scalar_encode() -> list[int]:
                return [curve.encode(p) for p in point_list]

            indices = curve.encode_many(points)
            scalar_s = _best_of(scalar_encode, repeats)
            vec_s = _best_of(lambda: curve.encode_many(points), repeats)
            decode_vec_s = _best_of(lambda: curve.decode_many(indices), repeats)
            rows.append(
                {
                    "curve": curve_name,
                    "dims": dims,
                    "order": order,
                    "n_points": n_points,
                    "encode_scalar_s": scalar_s,
                    "encode_vectorized_s": vec_s,
                    "encode_speedup": scalar_s / vec_s if vec_s > 0 else None,
                    "decode_vectorized_s": decode_vec_s,
                    "encode_mpts_per_s": n_points / vec_s / 1e6 if vec_s > 0 else None,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Suite: refinement kernel (scalar vs. vectorized)
# ----------------------------------------------------------------------
def _region_suite(dims: int, order: int, rng: random.Random) -> list[tuple[str, Region]]:
    """Range- and wildcard-shaped query regions for one geometry, seeded."""
    side = 1 << order
    regions: list[tuple[str, Region]] = []
    # Broad range query: ~60% span on every dimension.
    lo = side // 8
    regions.append(
        ("range-broad", Region.from_bounds([(lo, lo + int(side * 0.6))] * dims))
    )
    # Wildcard-like slab: full span on one dimension, narrow on the rest.
    bounds = [(0, side - 1)]
    for _ in range(dims - 1):
        start = rng.randrange(side // 2)
        bounds.append((start, start + side // 8))
    regions.append(("wildcard-slab", Region.from_bounds(bounds)))
    # Two random boxes (seeded): mid-size spans at random offsets.
    for i in range(2):
        bounds = []
        for _ in range(dims):
            span = rng.randrange(side // 4, side // 2)
            start = rng.randrange(side - span)
            bounds.append((start, start + span))
        regions.append((f"random-box-{i}", Region.from_bounds(bounds)))
    return regions


def bench_refine(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Refinement microbench: full cluster resolution, scalar vs. NumPy."""
    geometries = [(2, 8)] if quick else [(2, 10), (2, 12), (3, 8)]
    repeats = 1 if quick else 2
    rows: list[dict[str, Any]] = []
    for dims, order in geometries:
        curve = make_curve("hilbert", dims, order)
        rng = random.Random(seed * 1000 + dims * 10 + order)
        for label, region in _region_suite(dims, order, rng):
            with vectorized_refinement(False):
                scalar_ranges = resolve_clusters(curve, region)
                scalar_s = _best_of(lambda: resolve_clusters(curve, region), repeats)
            with vectorized_refinement(True):
                vec_ranges = resolve_clusters(curve, region)
                vec_s = _best_of(lambda: resolve_clusters(curve, region), repeats)
            if scalar_ranges != vec_ranges:  # pragma: no cover - exactness guard
                raise AssertionError(
                    f"vectorized refinement diverged on {label} d={dims} order={order}"
                )
            rows.append(
                {
                    "curve": "hilbert",
                    "dims": dims,
                    "order": order,
                    "region": label,
                    "clusters": len(scalar_ranges),
                    "scalar_s": scalar_s,
                    "vectorized_s": vec_s,
                    "speedup": scalar_s / vec_s if vec_s > 0 else None,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Suite: end-to-end query latency by query class
# ----------------------------------------------------------------------
_WORD_STEMS = [
    "computer", "computation", "compiler", "network", "netbook", "storage",
    "monitor", "memory", "bandwidth", "database", "processor", "scheduler",
]

#: One representative textual query per class (word dim, numeric dim).
_QUERY_CLASSES = [
    ("exact", "(computer, 512)"),
    ("prefix", "(comp*, 512)"),
    ("wildcard", "(*, 512)"),
    ("range", "(*, 256-512)"),
]


def _build_system(seed: int, quick: bool, engine: str):
    from repro.core.system import SquidSystem

    bits = 8 if quick else 12
    n_nodes = 16 if quick else 64
    n_docs = 200 if quick else 2_000
    space = KeywordSpace(
        [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=bits
    )
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed, engine=engine)
    rng = random.Random(seed)
    keys = [
        (rng.choice(_WORD_STEMS), float(rng.choice([128, 256, 300, 512, 640, 1024])))
        for _ in range(n_docs)
    ]
    system.publish_many(keys, payloads=range(n_docs))
    return system


def bench_e2e(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Repeated-query latency per class, baseline vs. optimized hot path.

    Baseline disables the NumPy kernel and the plan cache; optimized runs
    with both (cache warmed by one untimed query, the steady state of a
    repeated workload).  Both modes run the same ``runs`` timed repetitions
    from the same origin with the same rng, and must return identical
    match sets.
    """
    runs = 2 if quick else 5
    rows: list[dict[str, Any]] = []
    for engine in ("optimized", "naive"):
        system = _build_system(seed, quick, engine)
        origin = system.overlay.node_ids()[0]

        def run_query(text: str) -> Any:
            return system.query(text, origin=origin, rng=0)

        for query_class, text in _QUERY_CLASSES:
            # Baseline: scalar refinement, no plan reuse.
            system.plan_cache = None
            with vectorized_refinement(False):
                base_result = run_query(text)
                t0 = perf_counter()
                for _ in range(runs):
                    run_query(text)
                baseline_s = (perf_counter() - t0) / runs
            # Optimized: NumPy kernel + warm plan cache.
            system.plan_cache = PlanCache()
            with vectorized_refinement(True):
                opt_result = run_query(text)  # warms the cache, untimed
                t0 = perf_counter()
                for _ in range(runs):
                    run_query(text)
                optimized_s = (perf_counter() - t0) / runs
            base_keys = {e.payload for e in base_result.matches}
            opt_keys = {e.payload for e in opt_result.matches}
            if base_keys != opt_keys:  # pragma: no cover - exactness guard
                raise AssertionError(
                    f"optimized path changed the match set for {text!r} on {engine}"
                )
            rows.append(
                {
                    "engine": engine,
                    "class": query_class,
                    "query": text,
                    "runs": runs,
                    "matches": len(base_result.matches),
                    "baseline_s": baseline_s,
                    "optimized_s": optimized_s,
                    "speedup": baseline_s / optimized_s if optimized_s > 0 else None,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Suite: parallel batch execution (serial vs. multiprocess pool)
# ----------------------------------------------------------------------
def _batch_queries(seed: int, count: int) -> list[str]:
    """A seeded mixed-class query batch over the bench system's space."""
    rng = random.Random(seed * 7 + 1)
    sizes = [128, 256, 300, 512, 640, 1024]
    queries: list[str] = []
    for i in range(count):
        cls = ("exact", "prefix", "wildcard", "range")[i % 4]
        stem = rng.choice(_WORD_STEMS)
        size = rng.choice(sizes)
        if cls == "exact":
            queries.append(f"({stem}, {size})")
        elif cls == "prefix":
            queries.append(f"({stem[:4]}*, {size})")
        elif cls == "wildcard":
            queries.append(f"(*, {size})")
        else:
            lo = rng.choice([s for s in sizes if s < 1024])
            queries.append(f"(*, {lo}-1024)")
    return queries


def bench_parallel(
    seed: int, quick: bool = False, workers: int = 2
) -> list[dict[str, Any]]:
    """Serial vs. pooled batch execution; asserts bit-identical outputs.

    Runs the same batch through ``query_many(workers=1)`` (in-process, the
    serial reference) and ``query_many(workers=N)`` (multiprocess pool) and
    verifies per-query match payloads, per-query stats, merged stats, and
    merged metrics snapshots are identical — the pool's determinism
    contract, checked on every bench run.  Speedup is wall-clock and bound
    by physical cores.
    """
    n_queries = 64 if quick else 256
    system = _build_system(seed, quick, "optimized")
    queries = _batch_queries(seed, n_queries)

    serial = system.query_many(queries, workers=1, seed=seed)
    pooled = system.query_many(queries, workers=workers, seed=seed)

    serial_payloads = [sorted(str(e.payload) for e in r.matches) for r in serial.results]
    pooled_payloads = [sorted(str(e.payload) for e in r.matches) for r in pooled.results]
    if serial_payloads != pooled_payloads:  # pragma: no cover - exactness guard
        raise AssertionError("pooled execution changed a query's match set")
    if [r.stats.as_dict() for r in serial.results] != [
        r.stats.as_dict() for r in pooled.results
    ]:  # pragma: no cover - exactness guard
        raise AssertionError("pooled execution changed per-query stats")
    if serial.stats.as_dict() != pooled.stats.as_dict():  # pragma: no cover
        raise AssertionError("pooled execution changed the merged stats")
    if json.dumps(serial.metrics, sort_keys=True) != json.dumps(
        pooled.metrics, sort_keys=True
    ):  # pragma: no cover - exactness guard
        raise AssertionError("pooled execution changed the merged metrics")

    counters = serial.metrics["counters"]
    return [
        {
            "queries": len(queries),
            "chunk_size": serial.chunk_size,
            "chunks": serial.chunk_count,
            "workers": pooled.workers,
            "start_method": pooled.start_method,
            "serial_s": serial.elapsed_s,
            "parallel_s": pooled.elapsed_s,
            "speedup": serial.elapsed_s / pooled.elapsed_s if pooled.elapsed_s else None,
            "total_matches": serial.total_matches(),
            "route_cache_hits": counters.get("overlay.route_cache.hits", 0),
            "route_cache_misses": counters.get("overlay.route_cache.misses", 0),
        }
    ]


# ----------------------------------------------------------------------
# Suite: resilient execution under an injected fault plane
# ----------------------------------------------------------------------
def bench_resilience(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Fault-plane execution: zero-fault identity guard + mitigation rows.

    The identity guard runs the same seeded query batch through a plain
    :class:`~repro.core.engine.OptimizedEngine` and through one configured
    with an all-zero-rate fault plane, a retry policy, and a replication
    manager — the resilience machinery armed but never triggered — and
    asserts per-query match payloads, per-query stats dicts, and the
    collected metrics snapshots are identical.  The mitigation rows then
    raise the message-drop rate and record what each mitigation ladder
    step buys: recall, completed fraction, retries, failovers, and lost
    branches, plus wall time per query.
    """
    from repro.core.engine import OptimizedEngine
    from repro.core.replication import ReplicationManager
    from repro.faults import FaultConfig, FaultPlane, RetryPolicy
    from repro.obs import metrics as obs_metrics

    n_queries = 8 if quick else 24
    drop_rate = 0.25
    system = _build_system(seed, quick, "optimized")
    queries = _batch_queries(seed * 3 + 1, n_queries)
    ids = system.overlay.node_ids()
    expected = [
        {str(e.payload) for e in system.brute_force_matches(text)} for text in queries
    ]

    def run_batch(engine):
        """One seeded pass over the batch; returns outputs + wall time.

        Plan and route caches are reset so every pass starts cold —
        otherwise the first engine would warm them for the second and the
        identity guard would flag the hit/miss counters.
        """
        from repro.overlay.chord import RouteCache

        rng = np.random.default_rng(seed * 11 + 3)
        system.plan_cache = PlanCache()
        system.overlay.route_cache = RouteCache()
        payloads, stats_dicts, results = [], [], []
        with obs_metrics.collecting() as registry:
            t0 = perf_counter()
            for i, text in enumerate(queries):
                origin = ids[(seed + i * 5) % len(ids)]
                res = engine.execute(system, text, origin=origin, rng=rng)
                payloads.append(sorted(str(e.payload) for e in res.matches))
                stats_dicts.append(res.stats.as_dict())
                results.append(res)
            elapsed = perf_counter() - t0
            snapshot = registry.snapshot()
        return payloads, stats_dicts, results, snapshot, elapsed

    plain = OptimizedEngine()
    armed = OptimizedEngine(
        fault_plane=FaultPlane(FaultConfig(seed=seed)),
        retry=RetryPolicy(),
        replication=ReplicationManager(system, degree=2),
    )
    ref_payloads, ref_stats, _, ref_snapshot, _ = run_batch(plain)
    arm_payloads, arm_stats, _, arm_snapshot, _ = run_batch(armed)
    if arm_payloads != ref_payloads:  # pragma: no cover - exactness guard
        raise AssertionError("zero-fault plane changed a query's match set")
    if arm_stats != ref_stats:  # pragma: no cover - exactness guard
        raise AssertionError("zero-fault plane changed per-query stats")
    if json.dumps(arm_snapshot, sort_keys=True) != json.dumps(
        ref_snapshot, sort_keys=True
    ):  # pragma: no cover - exactness guard
        raise AssertionError("zero-fault plane changed the metrics snapshot")

    rows: list[dict[str, Any]] = []
    for label, retry, degree in (
        ("none", False, 0),
        ("retry", True, 0),
        ("retry+replication", True, 2),
    ):
        manager = ReplicationManager(system, degree=degree) if degree else None
        engine = OptimizedEngine(
            fault_plane=FaultPlane(FaultConfig(drop_rate=drop_rate, seed=seed + 1)),
            retry=RetryPolicy() if retry else None,
            replication=manager,
        )
        payloads, _, results, _, elapsed = run_batch(engine)
        recalls = [
            len(set(got) & want) / len(want) if want else 1.0
            for got, want in zip(payloads, expected)
        ]
        rows.append(
            {
                "fault_rate": drop_rate,
                "mitigation": label,
                "queries": n_queries,
                "recall": sum(recalls) / len(recalls),
                "complete_fraction": sum(r.complete for r in results) / len(results),
                "retries": sum(r.stats.retries for r in results),
                "failovers": sum(r.stats.failovers for r in results),
                "lost_branches": sum(r.stats.lost_branches for r in results),
                "per_query_s": elapsed / n_queries,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Suite: node-store data plane (local / columnar / sqlite)
# ----------------------------------------------------------------------
def _rss_mb() -> float | None:
    """Current resident set size in MiB (Linux), peak RSS as a fallback."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
            peak_kb /= 1024.0
        return peak_kb / 1024.0
    except Exception:  # pragma: no cover - resource module missing
        return None


def bench_store(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Publish/scan throughput and footprint, one row per store backend.

    Each backend gets a fresh seeded ring and the same seeded corpus
    (5k nodes / 10^6 keys at full scale), published through the real
    system path so every backend pays identical encode/route cost and
    the rows differ only in the data plane.  Scans are a full index-space
    sweep over every node store (throughput) plus a set of seeded index
    windows whose concatenated output — node, index, key, payload, *in
    yield order* — must be byte-identical to the ``local`` backend's,
    the contract-defining reference.  SQLite runs file-backed (one
    database per node in a temp directory) so the bench covers the
    persistent path, not just ``:memory:``.
    """
    import gc
    import shutil
    import tempfile

    from repro.core.system import SquidSystem
    from repro.store import StoreSpec

    n_nodes = 48 if quick else 5_000
    n_keys = 4_000 if quick else 1_000_000
    n_windows = 8 if quick else 16
    bits = 8 if quick else 12
    space = KeywordSpace(
        [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=bits
    )
    rng = random.Random(seed * 13 + 5)
    keys = [
        (rng.choice(_WORD_STEMS), float(rng.randrange(1, 1025)))
        for _ in range(n_keys)
    ]
    payloads = list(range(n_keys))

    rows: list[dict[str, Any]] = []
    reference: list[tuple[int, int, tuple, Any]] | None = None
    for backend in ("local", "columnar", "sqlite"):
        tmpdir = None
        store_arg: str | StoreSpec = backend
        if backend == "sqlite":
            tmpdir = tempfile.mkdtemp(prefix="squid-bench-store-")
            store_arg = StoreSpec("sqlite", {"path": tmpdir})
        system = SquidSystem.create(
            space, n_nodes=n_nodes, seed=seed, store=store_arg
        )
        gc.collect()
        t0 = perf_counter()
        system.publish_many(keys, payloads=payloads)
        publish_s = perf_counter() - t0
        rss_mb = _rss_mb()
        store_memory = sum(s.memory_bytes() for s in system.stores.values())

        stores = [system.stores[nid] for nid in sorted(system.stores)]
        index_size = 1 << system.curve.index_bits
        sweep = [(0, index_size - 1)]
        t0 = perf_counter()
        scanned = 0
        for store in stores:
            for _ in store.scan_ranges(sweep):
                scanned += 1
        scan_s = perf_counter() - t0
        if scanned != n_keys:  # pragma: no cover - exactness guard
            raise AssertionError(
                f"{backend}: full sweep returned {scanned} of {n_keys} elements"
            )

        window = max(1, index_size // (n_windows * 4))
        wrng = random.Random(seed * 17 + 3)
        window_out: list[tuple[int, int, tuple, Any]] = []
        for _ in range(n_windows):
            lo = wrng.randrange(index_size - window)
            ranges = [(lo, lo + window - 1)]
            for node_id in sorted(system.stores):
                for e in system.stores[node_id].scan_ranges(ranges):
                    window_out.append((node_id, e.index, tuple(e.key), e.payload))
        if backend == "local":
            reference = window_out
        elif window_out != reference:  # pragma: no cover - exactness guard
            raise AssertionError(
                f"{backend} window scans diverged from the local reference"
            )

        rows.append(
            {
                "backend": backend,
                "nodes": n_nodes,
                "keys": n_keys,
                "publish_s": publish_s,
                "publish_keys_per_s": n_keys / publish_s if publish_s > 0 else None,
                "scan_s": scan_s,
                "scanned_elements": scanned,
                "scan_elements_per_s": scanned / scan_s if scan_s > 0 else None,
                "windows": n_windows,
                "window_elements": len(window_out),
                "rss_mb": rss_mb,
                "store_memory_mb": store_memory / (1024 * 1024),
            }
        )
        for store in stores:
            store.close()
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
        del system, stores
        gc.collect()
    return rows


# ----------------------------------------------------------------------
# Suite: skewed trace replay (result cache off vs on)
# ----------------------------------------------------------------------
def bench_trace(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Zipf trace replay on twin systems: result cache off vs on.

    Both twins start from the same seeded corpus and replay the same trace
    op-for-op in lockstep — publishes land on both, queries run on both.
    Three guards are hard assertions (they make the CI leg a plain bench
    invocation):

    * **zero stale** — every query op's sorted match payloads are identical
      between the cached and uncached twin, even right after a publish into
      a hot region (the uncached twin is exact by construction, so equality
      proves the cache never served a stale entry);
    * **hit rate** — the Zipf(1.0) trace must produce a hit rate > 0
      (quick) / >= 0.6 (full scale);
    * **speedup** (full scale only) — median per-query wall time must drop
      >= 5x with the cache on.
    """
    from repro.core.resultcache import ResultCache
    from repro.workloads.trace import synthetic_trace

    n_ops = 300 if quick else 2_000
    pool_size = 30 if quick else 50
    zipf_exponent = 1.0
    publish_mix = 0.01
    burstiness = 0.2

    system_off = _build_system(seed, quick, "optimized")
    system_on = _build_system(seed, quick, "optimized")
    system_on.result_cache = ResultCache(capacity=128)

    queries = _batch_queries(seed * 5 + 2, pool_size)
    rng = random.Random(seed * 19 + 7)
    publish_keys = [
        (rng.choice(_WORD_STEMS), float(rng.choice([128, 256, 300, 512, 640, 1024])))
        for _ in range(64)
    ]
    trace = synthetic_trace(
        queries,
        length=n_ops,
        zipf_exponent=zipf_exponent,
        burstiness=burstiness,
        publish_mix=publish_mix,
        publish_keys=publish_keys,
        rng=np.random.default_rng(seed * 23 + 11),
    )

    off_times: list[float] = []
    on_times: list[float] = []
    messages_off = messages_on = publishes = 0
    origin_off = np.random.default_rng(seed * 29 + 1)
    origin_on = np.random.default_rng(seed * 29 + 1)
    for op in trace:
        if op.kind == "publish":
            system_off.publish(op.key, payload=op.payload)
            system_on.publish(op.key, payload=op.payload)
            publishes += 1
            continue
        t0 = perf_counter()
        res_off = system_off.query(op.query, rng=origin_off)
        off_times.append(perf_counter() - t0)
        t0 = perf_counter()
        res_on = system_on.query(op.query, rng=origin_on)
        on_times.append(perf_counter() - t0)
        messages_off += res_off.stats.messages
        messages_on += res_on.stats.messages
        got_off = sorted(str(e.payload) for e in res_off.matches)
        got_on = sorted(str(e.payload) for e in res_on.matches)
        if got_on != got_off:  # pragma: no cover - zero-stale guard
            raise AssertionError(
                f"result cache served a stale/incorrect answer for {op.query!r}"
            )

    cache = system_on.result_cache
    hit_rate = cache.hit_rate
    median_off = percentile(off_times, 50)
    median_on = percentile(on_times, 50)
    median_speedup = median_off / median_on if median_on > 0 else None
    if hit_rate <= 0.0:  # pragma: no cover - hit-rate guard
        raise AssertionError("Zipf trace produced no result-cache hits")
    if not quick:  # pragma: no cover - full-scale acceptance guards
        if hit_rate < 0.6:
            raise AssertionError(
                f"trace hit rate {hit_rate:.3f} below the 0.6 acceptance floor"
            )
        if median_speedup is not None and median_speedup < 5.0:
            raise AssertionError(
                f"trace median speedup {median_speedup:.1f}x below the 5x floor"
            )
    return [
        {
            "ops": len(trace),
            "queries": trace.query_count,
            "distinct_queries": trace.distinct_queries(),
            "publishes": publishes,
            "zipf_exponent": zipf_exponent,
            "publish_mix": publish_mix,
            "burstiness": burstiness,
            "cache_capacity": cache.capacity,
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
            "hit_rate": hit_rate,
            "messages_off": messages_off,
            "messages_on": messages_on,
            "messages_saved": messages_off - messages_on,
            "median_uncached_s": median_off,
            "median_cached_s": median_on,
            "median_speedup": median_speedup,
            "stale_results": 0,
        }
    ]


# ----------------------------------------------------------------------
# Suite: served queries (HTTP front-end over the asyncio transport)
# ----------------------------------------------------------------------
def bench_serve(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Served-query throughput and latency, 1 client vs 16 concurrent.

    Starts a :class:`~repro.net.server.QueryServer` on an ephemeral port
    with a small simulated per-message wire delay (0.5ms — without one, a
    single-core host hides the concurrency win behind pure CPU time) and
    replays the same skewed request list twice in closed loop: one client,
    then 16.  Guards, both fatal:

    * **answer identity** — every served answer (matches in engine order,
      completeness, unresolved ranges) must be JSON-byte-identical to the
      in-process ``SquidSystem.query`` answer for the same query and origin
      on an independently built twin system, in both the serial and the
      concurrent run;
    * **concurrency wins** — the 16-client run's QPS must exceed the
      1-client run's (in-flight queries overlap their wire delays; a
      serial client pays them back to back).
    """
    import asyncio

    from repro.net import (
        QueryServer,
        build_demo_system,
        demo_requests,
        encode_result,
    )
    from repro.net.loadgen import run_pool

    n_nodes = 16 if quick else 64
    n_docs = 200 if quick else 2_000
    bits = 8 if quick else 12
    n_requests = 48 if quick else 200
    clients = 16
    per_message_delay = 0.0005

    system = build_demo_system(seed=seed, n_nodes=n_nodes, n_docs=n_docs, bits=bits)
    reference = build_demo_system(
        seed=seed, n_nodes=n_nodes, n_docs=n_docs, bits=bits
    )
    requests = demo_requests(system, seed, n_requests)
    expected = [
        json.dumps(
            encode_result(reference.query(r["query"], origin=r["origin"])),
            sort_keys=True,
        )
        for r in requests
    ]

    async def _measure():
        async with QueryServer(
            system,
            per_message_delay=per_message_delay,
            max_inflight=max(64, clients),
        ) as server:
            serial = await run_pool(
                server.host, server.port, requests,
                mode="closed", concurrency=1, collect=True,
            )
            concurrent = await run_pool(
                server.host, server.port, requests,
                mode="closed", concurrency=clients, collect=True,
            )
            return serial, concurrent

    serial, concurrent = asyncio.run(_measure())

    rows: list[dict[str, Any]] = []
    for report in (serial, concurrent):
        if report.errors:  # pragma: no cover - zero-error guard
            raise AssertionError(
                f"serve bench had {report.errors} errors at "
                f"concurrency {report.concurrency}"
            )
        served = [
            json.dumps(resp["result"], sort_keys=True)
            for resp in report.responses
        ]
        if served != expected:  # pragma: no cover - identity guard
            bad = next(
                i for i, (s, e) in enumerate(zip(served, expected)) if s != e
            )
            raise AssertionError(
                f"served answer diverged from in-process answer at "
                f"concurrency {report.concurrency}, request {bad}: "
                f"{requests[bad]['query']!r}"
            )
        rows.append(
            {
                "mode": report.mode,
                "clients": report.concurrency,
                "requests": report.sent,
                "errors": report.errors,
                "duration_s": report.duration_s,
                "qps": report.qps,
                "p50_ms": report.latency_s["p50"] * 1e3,
                "p95_ms": report.latency_s["p95"] * 1e3,
                "p99_ms": report.latency_s["p99"] * 1e3,
                "nodes": n_nodes,
                "per_message_delay_s": per_message_delay,
                "identity": True,
            }
        )
    speedup = rows[1]["qps"] / rows[0]["qps"] if rows[0]["qps"] else None
    if speedup is None or speedup <= 1.0:  # pragma: no cover - throughput guard
        raise AssertionError(
            f"{clients} concurrent clients did not beat 1 client: "
            f"{rows[1]['qps']:.1f} vs {rows[0]['qps']:.1f} qps"
        )
    for row in rows:
        row["concurrency_speedup"] = speedup
    return rows


# ----------------------------------------------------------------------
# Suite: overload protection (guard plane + bounded front door)
# ----------------------------------------------------------------------
def bench_overload(seed: int, quick: bool = False) -> list[dict[str, Any]]:
    """Overload protection: identity when idle, honest shedding under load.

    Four parts (see module docstring): the zero-overload bit-identity
    guards (plain vs. idle-guarded, and faulty vs. faulty+idle-guarded —
    the latter proves the guard consumes no RNG and leaves the fault
    stream untouched), a deterministic in-process shedding row, and the
    serving-layer comparison: the same open-loop overload (>= 4x measured
    capacity) against an unguarded and a guarded server, where the guarded
    configuration must win on both p99 and goodput.  All guards are hard
    assertions; the returned rows record one leg each.
    """
    import asyncio

    from repro.core.engine import OptimizedEngine
    from repro.faults import FaultConfig, FaultPlane, RetryPolicy
    from repro.guard import GuardConfig, GuardPlane
    from repro.net import (
        QueryServer,
        build_demo_system,
        demo_requests,
        encode_result,
    )
    from repro.net.loadgen import run_pool
    from repro.obs import metrics as obs_metrics

    # -- Part 1: zero-overload bit-identity (in-process twin) -----------
    n_queries = 8 if quick else 24
    system = _build_system(seed, quick, "optimized")
    queries = _batch_queries(seed * 3 + 1, n_queries)
    ids = system.overlay.node_ids()

    def idle_guard() -> GuardPlane:
        """Armed but unreachable thresholds: active, never trips."""
        return GuardPlane(
            GuardConfig(queue_high=1_000_000, bucket_capacity=1_000_000)
        )

    def run_batch(engine):
        """One seeded pass over the batch (cold caches, private registry)."""
        from repro.overlay.chord import RouteCache

        rng = np.random.default_rng(seed * 11 + 3)
        system.plan_cache = PlanCache()
        system.overlay.route_cache = RouteCache()
        payloads, stats_dicts = [], []
        with obs_metrics.collecting() as registry:
            for i, text in enumerate(queries):
                origin = ids[(seed + i * 5) % len(ids)]
                res = engine.execute(
                    system, text, origin=origin, rng=rng, priority="batch"
                )
                payloads.append(sorted(str(e.payload) for e in res.matches))
                stats_dicts.append(res.stats.as_dict())
            snapshot = registry.snapshot()
        return payloads, stats_dicts, snapshot

    ref = run_batch(OptimizedEngine())
    idle = run_batch(OptimizedEngine(guard=idle_guard()))
    if idle[0] != ref[0]:  # pragma: no cover - exactness guard
        raise AssertionError("idle guard plane changed a query's match set")
    if idle[1] != ref[1]:  # pragma: no cover - exactness guard
        raise AssertionError("idle guard plane changed per-query stats")
    if json.dumps(idle[2], sort_keys=True) != json.dumps(
        ref[2], sort_keys=True
    ):  # pragma: no cover - exactness guard
        raise AssertionError("idle guard plane changed the metrics snapshot")

    def faulty_engine(guard: GuardPlane | None):
        return OptimizedEngine(
            fault_plane=FaultPlane(FaultConfig(drop_rate=0.25, seed=seed + 1)),
            retry=RetryPolicy(),
            guard=guard,
        )

    faulty_ref = run_batch(faulty_engine(None))
    faulty_idle = run_batch(faulty_engine(idle_guard()))
    if faulty_idle[:2] != faulty_ref[:2]:  # pragma: no cover - exactness guard
        raise AssertionError(
            "idle guard plane perturbed the fault plane's RNG stream"
        )

    # -- Part 2: deterministic honest shedding (in-process) -------------
    throttled = OptimizedEngine(
        guard=GuardPlane(
            GuardConfig(queue_high=1, queue_low=0, bucket_capacity=1,
                        bucket_refill=0.0)
        )
    )
    shed_query = "(*, 256-1024)"
    brute = {str(e.payload) for e in system.brute_force_matches(shed_query)}
    system.plan_cache = PlanCache()
    shed_res = throttled.execute(
        system, shed_query, origin=ids[0],
        rng=np.random.default_rng(seed), priority="batch",
    )
    shed_got = {str(e.payload) for e in shed_res.matches}
    if not shed_got <= brute:  # pragma: no cover - honesty guard
        raise AssertionError("shed run returned matches outside the exact set")
    if shed_res.stats.shed_branches == 0:  # pragma: no cover - honesty guard
        raise AssertionError("throttled engine shed no branches")
    if shed_res.complete or not shed_res.unresolved_ranges:  # pragma: no cover
        raise AssertionError("shed run did not report an honest partial result")

    rows: list[dict[str, Any]] = [
        {
            "leg": "shed-honesty",
            "queries": 1,
            "shed_branches": shed_res.stats.shed_branches,
            "matches": len(shed_got),
            "exact_matches": len(brute),
            "unresolved_span": shed_res.unresolved_span,
            "complete": shed_res.complete,
            "identity": True,
        }
    ]

    # -- Parts 3+4: serving legs (unguarded vs guarded vs chaos) --------
    n_nodes = 16 if quick else 64
    n_docs = 200 if quick else 2_000
    bits = 8 if quick else 12
    # The overload window must be long enough for the unguarded server to
    # reach its saturated steady state (queueing compounding past the
    # deadline); a short burst lets its early-ramp answers land in-deadline
    # and the goodput comparison becomes a coin flip.
    n_requests = 160 if quick else 280
    n_cal = 40 if quick else 60
    max_inflight = 8 if quick else 16
    max_backlog = 4 if quick else 8
    factor = 4.0
    per_message_delay = 0.001
    # Client concurrency sets the unguarded server's queueing depth, and
    # with it the wave latency every unguarded answer pays under overload
    # (~concurrency / capacity).  It must sit well past the deadline while
    # the guarded bound (max_inflight + max_backlog servings) sits well
    # inside it, or the p99/goodput gates degenerate into coin flips.
    loadgen_clients = 128
    guard_kwargs = dict(queue_high=32, queue_limit=96)

    reference = build_demo_system(
        seed=seed, n_nodes=n_nodes, n_docs=n_docs, bits=bits
    )
    requests = demo_requests(reference, seed, n_requests)
    calm_requests = requests[:n_cal]
    expected_calm = [
        json.dumps(
            encode_result(reference.query(r["query"], origin=r["origin"])),
            sort_keys=True,
        )
        for r in calm_requests
    ]

    def fresh_system(engine):
        return build_demo_system(
            seed=seed, n_nodes=n_nodes, n_docs=n_docs, bits=bits, engine=engine
        )

    async def _unguarded():
        # Same service capacity as the guarded leg (identical max_inflight)
        # but no backlog cap: excess requests wait in an unbounded queue,
        # the classic pre-admission-control posture.  The comparison then
        # isolates the admission policy — fail-fast 429s vs. queueing —
        # rather than conflating it with a capacity difference.
        async with QueryServer(
            fresh_system("optimized"),
            per_message_delay=per_message_delay,
            max_inflight=max_inflight,
        ) as server:
            cal = await run_pool(
                server.host, server.port, requests[:n_cal],
                mode="closed", concurrency=8,
            )
            rate = factor * cal.qps
            deadline = 2.0 * (max_inflight + max_backlog) / cal.qps
            over = await run_pool(
                server.host, server.port, requests,
                mode="open", rate=rate, concurrency=loadgen_clients,
                priority="batch", deadline=deadline,
            )
            return cal, rate, deadline, over

    cal, rate, deadline, unguarded = asyncio.run(_unguarded())

    async def _guarded(engine, *, calm: bool):
        async with QueryServer(
            fresh_system(engine),
            per_message_delay=per_message_delay,
            max_inflight=max_inflight,
            max_backlog=max_backlog,
        ) as server:
            # Warm the plan/route caches like the unguarded calibration did.
            await run_pool(
                server.host, server.port, requests[:n_cal],
                mode="closed", concurrency=8,
            )
            calm_report = None
            if calm:
                # A modest client pool: the calm leg checks inertness below
                # the watermarks, and a full overload-sized client swarm can
                # burst past the small backlog cap even at half capacity.
                calm_report = await run_pool(
                    server.host, server.port, calm_requests,
                    mode="open", rate=max(1.0, 0.5 * cal.qps),
                    concurrency=8, deadline=deadline,
                    collect=True,
                )
            over = await run_pool(
                server.host, server.port, requests,
                mode="open", rate=rate, concurrency=loadgen_clients,
                priority="batch", deadline=deadline,
            )
            return calm_report, over

    guarded_engine = OptimizedEngine(
        guard=GuardPlane(GuardConfig(**guard_kwargs))
    )
    calm_report, guarded = asyncio.run(_guarded(guarded_engine, calm=True))

    chaos_engine = OptimizedEngine(
        fault_plane=FaultPlane(FaultConfig(drop_rate=0.05, seed=seed + 7)),
        retry=RetryPolicy(),
        guard=GuardPlane(GuardConfig(**guard_kwargs)),
    )
    _, chaos = asyncio.run(_guarded(chaos_engine, calm=False))

    # Calm-leg guards: below the watermarks the guarded stack is inert.
    if calm_report.rejected or calm_report.shed_answers or calm_report.errors:
        raise AssertionError(  # pragma: no cover - inertness guard
            f"calm leg was not clean: {calm_report.render()}"
        )
    served_calm = [
        json.dumps(resp["result"], sort_keys=True)
        for resp in calm_report.responses
    ]
    if served_calm != expected_calm:  # pragma: no cover - identity guard
        raise AssertionError(
            "calm-leg served answers diverged from the in-process twin"
        )

    # Overload guards: no server failures anywhere; the guarded leg must
    # beat the unguarded one on both tail latency and useful throughput.
    for label, report in (
        ("unguarded", unguarded), ("guarded", guarded), ("chaos", chaos)
    ):
        fives = sum(
            count for code, count in report.statuses.items()
            if code.isdigit() and int(code) >= 500
        )
        if fives or report.errors:  # pragma: no cover - graceful guard
            raise AssertionError(
                f"{label} overload leg failed hard: {report.render()}"
            )
    if guarded.goodput <= unguarded.goodput:  # pragma: no cover
        raise AssertionError(
            f"guards did not improve goodput: {guarded.goodput:.1f} vs "
            f"{unguarded.goodput:.1f} answers/s"
        )
    if guarded.latency_s["p99"] >= unguarded.latency_s["p99"]:  # pragma: no cover
        raise AssertionError(
            f"guards did not improve p99: {guarded.latency_s['p99'] * 1e3:.0f}ms "
            f"vs {unguarded.latency_s['p99'] * 1e3:.0f}ms"
        )

    def leg_row(leg: str, report) -> dict[str, Any]:
        return {
            "leg": leg,
            "requests": report.sent,
            "rate": report.rate,
            "overload_factor": (report.rate / cal.qps) if report.rate else None,
            "deadline_ms": deadline * 1e3,
            "completed": report.completed,
            "rejected": report.rejected,
            "shed_answers": report.shed_answers,
            "late_answers": report.late_answers,
            "errors": report.errors,
            "qps": report.qps,
            "goodput": report.goodput,
            "shed_fraction": report.shed_fraction,
            "p50_ms": report.latency_s["p50"] * 1e3,
            "p95_ms": report.latency_s["p95"] * 1e3,
            "p99_ms": report.latency_s["p99"] * 1e3,
            "nodes": n_nodes,
            "capacity_qps": cal.qps,
        }

    rows.append(leg_row("calm-guarded", calm_report))
    rows.append(leg_row("overload-unguarded", unguarded))
    rows.append(leg_row("overload-guarded", guarded))
    rows.append(leg_row("overload-chaos", chaos))
    return rows


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
#: Suite registry, in run/report order.  ``parallel`` takes the workers
#: knob; every other suite is ``fn(seed, quick)``.
SUITES = (
    "encode", "refine", "e2e", "parallel", "resilience", "store", "trace",
    "serve", "overload",
)


def run_bench(
    seed: int = 42,
    quick: bool = False,
    workers: int | None = None,
    suites: "list[str] | tuple[str, ...] | None" = None,
) -> dict[str, Any]:
    """Run the selected suites and assemble the versioned result document.

    ``workers`` sets the pooled side of the ``parallel`` suite; ``None``
    uses the process-wide default (CLI ``--workers``), floored at 2 so the
    suite always exercises the multiprocess path.  ``suites`` selects a
    subset by name (CLI ``--suites``); ``None`` runs everything.  The
    summary only carries entries whose source suite ran.
    """
    from repro.exec import get_default_workers

    if workers is None:
        workers = max(2, get_default_workers())
    selected = tuple(suites) if suites else SUITES
    unknown = [name for name in selected if name not in SUITES]
    if unknown:
        raise ValueError(f"unknown bench suite(s) {unknown}; choose from {SUITES}")

    suite_rows: dict[str, list[dict[str, Any]]] = {}
    for name in SUITES:
        if name not in selected:
            continue
        if name == "parallel":
            suite_rows[name] = bench_parallel(seed, quick, workers=workers)
        else:
            fn = {
                "encode": bench_encode,
                "refine": bench_refine,
                "e2e": bench_e2e,
                "resilience": bench_resilience,
                "store": bench_store,
                "trace": bench_trace,
                "serve": bench_serve,
                "overload": bench_overload,
            }[name]
            suite_rows[name] = fn(seed, quick)

    summary: dict[str, Any] = {}
    if "refine" in suite_rows:
        refine_speedups = [r["speedup"] for r in suite_rows["refine"] if r["speedup"]]
        summary["refine_min_speedup"] = (
            min(refine_speedups) if refine_speedups else None
        )
        summary["refine_max_speedup"] = (
            max(refine_speedups) if refine_speedups else None
        )
    if "e2e" in suite_rows:
        e2e_by_class: dict[str, list[float]] = {}
        for row in suite_rows["e2e"]:
            if row["speedup"]:
                e2e_by_class.setdefault(row["class"], []).append(row["speedup"])
        summary["e2e_median_speedup_by_class"] = {
            cls: percentile(vals, 50) for cls, vals in e2e_by_class.items()
        }
    if "parallel" in suite_rows:
        summary["parallel_speedup"] = suite_rows["parallel"][0]["speedup"]
        summary["parallel_workers"] = suite_rows["parallel"][0]["workers"]
    if "resilience" in suite_rows:
        summary["resilience_recall_by_mitigation"] = {
            row["mitigation"]: row["recall"] for row in suite_rows["resilience"]
        }
    if "store" in suite_rows:
        summary["store_publish_keys_per_s_by_backend"] = {
            row["backend"]: row["publish_keys_per_s"] for row in suite_rows["store"]
        }
        summary["store_scan_elements_per_s_by_backend"] = {
            row["backend"]: row["scan_elements_per_s"] for row in suite_rows["store"]
        }
    if "trace" in suite_rows:
        trace_row = suite_rows["trace"][0]
        summary["trace_hit_rate"] = trace_row["hit_rate"]
        summary["trace_median_speedup"] = trace_row["median_speedup"]
        summary["trace_messages_saved"] = trace_row["messages_saved"]
    if "serve" in suite_rows:
        serial_row, concurrent_row = suite_rows["serve"]
        summary["serve_qps_1_client"] = serial_row["qps"]
        summary["serve_qps_concurrent"] = concurrent_row["qps"]
        summary["serve_clients"] = concurrent_row["clients"]
        summary["serve_concurrency_speedup"] = concurrent_row["concurrency_speedup"]
        summary["serve_p95_ms_concurrent"] = concurrent_row["p95_ms"]
    if "overload" in suite_rows:
        by_leg = {row["leg"]: row for row in suite_rows["overload"]}
        summary["overload_factor"] = by_leg["overload-guarded"]["overload_factor"]
        summary["overload_goodput_unguarded"] = by_leg["overload-unguarded"]["goodput"]
        summary["overload_goodput_guarded"] = by_leg["overload-guarded"]["goodput"]
        summary["overload_p99_ms_unguarded"] = by_leg["overload-unguarded"]["p99_ms"]
        summary["overload_p99_ms_guarded"] = by_leg["overload-guarded"]["p99_ms"]
        summary["overload_shed_fraction_guarded"] = by_leg["overload-guarded"][
            "shed_fraction"
        ]

    return {
        "schema": SCHEMA,
        "seed": seed,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": sys.platform,
            "cpus": os.cpu_count(),
        },
        "suites": suite_rows,
        "summary": summary,
    }


def write_bench_json(result: dict[str, Any], path: str) -> None:
    """Write the result document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(result: dict[str, Any]) -> str:
    """Human-readable digest of one bench run (printed by the CLI).

    Tolerates partial documents: with ``--suites`` only the blocks whose
    suite actually ran are rendered.
    """
    suites = result["suites"]
    lines = [f"bench {result['schema']} (seed={result['seed']}, quick={result['quick']})"]
    if "refine" in suites:
        lines.append("refine (scalar vs vectorized resolve):")
        for row in suites["refine"]:
            lines.append(
                f"  d={row['dims']} order={row['order']:2d} {row['region']:14s} "
                f"{row['scalar_s'] * 1e3:8.2f}ms -> {row['vectorized_s'] * 1e3:7.2f}ms "
                f"({row['speedup']:.1f}x, {row['clusters']} clusters)"
            )
    if "e2e" in suites:
        lines.append("e2e (baseline vs vectorized+plan-cache, per query):")
        for row in suites["e2e"]:
            lines.append(
                f"  {row['engine']:9s} {row['class']:8s} {row['query']:16s} "
                f"{row['baseline_s'] * 1e3:8.2f}ms -> {row['optimized_s'] * 1e3:7.2f}ms "
                f"({row['speedup']:.1f}x, {row['matches']} matches)"
            )
    if "parallel" in suites:
        lines.append("parallel (serial vs pooled batch):")
        for row in suites["parallel"]:
            lines.append(
                f"  {row['queries']} queries, {row['chunks']} chunks, "
                f"workers={row['workers']} ({row['start_method']}): "
                f"{row['serial_s'] * 1e3:8.2f}ms -> {row['parallel_s'] * 1e3:8.2f}ms "
                f"({row['speedup']:.2f}x on {result['environment']['cpus']} cpu(s), "
                f"{row['route_cache_hits']} route-cache hits)"
            )
    if "resilience" in suites:
        lines.append(
            "resilience (mitigations at fixed drop rate, zero-fault guard passed):"
        )
        for row in suites["resilience"]:
            lines.append(
                f"  drop={row['fault_rate']} {row['mitigation']:18s} "
                f"recall={row['recall']:.3f} complete={row['complete_fraction']:.2f} "
                f"retries={row['retries']} failovers={row['failovers']} "
                f"lost={row['lost_branches']} ({row['per_query_s'] * 1e3:.2f}ms/query)"
            )
    if "store" in suites:
        lines.append("store (data-plane backends, window-scan identity guard passed):")
        for row in suites["store"]:
            rss = f"{row['rss_mb']:.0f}MB rss" if row["rss_mb"] is not None else "rss n/a"
            lines.append(
                f"  {row['backend']:8s} {row['nodes']} nodes, {row['keys']} keys: "
                f"publish {row['publish_keys_per_s']:,.0f} keys/s, "
                f"scan {row['scan_elements_per_s']:,.0f} elems/s "
                f"({rss}, stores {row['store_memory_mb']:.1f}MB)"
            )
    if "trace" in suites:
        lines.append("trace (Zipf replay, cache off vs on, zero-stale guard passed):")
        for row in suites["trace"]:
            lines.append(
                f"  {row['queries']} queries ({row['distinct_queries']} distinct) + "
                f"{row['publishes']} publishes, zipf={row['zipf_exponent']}: "
                f"hit-rate {row['hit_rate']:.2f} "
                f"({row['hits']} hits, {row['invalidations']} invalidations), "
                f"{row['median_uncached_s'] * 1e3:.2f}ms -> "
                f"{row['median_cached_s'] * 1e3:.3f}ms median "
                f"({row['median_speedup']:.1f}x), "
                f"{row['messages_saved']} messages saved"
            )
    if "serve" in suites:
        lines.append("serve (HTTP over asyncio transport, answer-identity guard passed):")
        for row in suites["serve"]:
            lines.append(
                f"  {row['clients']:2d} client(s), {row['requests']} requests "
                f"over {row['nodes']} nodes: {row['qps']:7.1f} qps, "
                f"p50={row['p50_ms']:.1f}ms p95={row['p95_ms']:.1f}ms "
                f"p99={row['p99_ms']:.1f}ms ({row['errors']} errors)"
            )
    if "overload" in suites:
        lines.append(
            "overload (guard plane + bounded front door, identity guards passed):"
        )
        for row in suites["overload"]:
            if row["leg"] == "shed-honesty":
                lines.append(
                    f"  {row['leg']:18s} shed={row['shed_branches']} branches, "
                    f"{row['matches']}/{row['exact_matches']} matches, "
                    f"unresolved span {row['unresolved_span']}"
                )
                continue
            lines.append(
                f"  {row['leg']:18s} rate={row['rate']:.0f}/s "
                f"({row['overload_factor']:.1f}x): "
                f"{row['completed']}/{row['requests']} ok, "
                f"{row['rejected']} rejected, {row['shed_answers']} shed, "
                f"goodput {row['goodput']:.1f}/s, "
                f"p99={row['p99_ms']:.0f}ms"
            )
    summary = result["summary"]
    if "refine_min_speedup" in summary and summary["refine_min_speedup"] is not None:
        lines.append(
            f"refine speedup min/max: {summary['refine_min_speedup']:.1f}x / "
            f"{summary['refine_max_speedup']:.1f}x"
        )
    if "e2e_median_speedup_by_class" in summary:
        by_class = summary["e2e_median_speedup_by_class"]
        classes = ", ".join(
            f"{cls}={spd:.1f}x" for cls, spd in sorted(by_class.items())
        )
        lines.append(f"e2e median speedup by class: {classes}")
    return "\n".join(lines)
