"""Reproducible benchmark harness for the query hot path.

Run via ``python -m repro bench`` (see :mod:`repro.cli`); the harness and
its suites live in :mod:`repro.bench.harness`.  Results are written as a
versioned JSON document (``BENCH_query_path.json`` at the repo root by
convention) so successive PRs can compare numbers; see
``docs/performance.md`` for how to read it.
"""

from repro.bench.harness import (
    SCHEMA,
    SUITES,
    bench_e2e,
    bench_encode,
    bench_parallel,
    bench_refine,
    bench_resilience,
    bench_store,
    bench_trace,
    render_summary,
    run_bench,
    write_bench_json,
)

__all__ = [
    "SCHEMA",
    "SUITES",
    "bench_encode",
    "bench_refine",
    "bench_e2e",
    "bench_parallel",
    "bench_resilience",
    "bench_store",
    "bench_trace",
    "render_summary",
    "run_bench",
    "write_bench_json",
]
