"""Comparison systems: flooding, inverted index, inverse-SFC/CAN."""

from repro.baselines.flooding import FloodingNetwork, FloodingStats
from repro.baselines.inverted import (
    InvertedIndexStats,
    InvertedIndexSystem,
    UnsupportedQueryError,
)
from repro.baselines.isfc_can import InverseSfcCanSystem, RangeQueryStats
from repro.baselines.kss import KeywordSetStats, KeywordSetSystem

__all__ = [
    "KeywordSetSystem",
    "KeywordSetStats",
    "FloodingNetwork",
    "FloodingStats",
    "InvertedIndexSystem",
    "InvertedIndexStats",
    "UnsupportedQueryError",
    "InverseSfcCanSystem",
    "RangeQueryStats",
]
