"""Gnutella-style unstructured flooding baseline (paper §2, §4.1.1).

The paper contrasts Squid with unstructured systems: "a keyword search
system like Gnutella would have to query the entire network using some form
of flooding to guarantee that all the matches to a query are returned."
This module quantifies that: documents are placed on random peers (no
structure), peers form a random regular graph, and queries flood with a TTL.

The trade-off it demonstrates:

* full recall requires flooding every reachable peer — O(N · degree)
  messages;
* bounding messages with a TTL sacrifices recall (matches are missed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

import networkx as nx

from repro.errors import WorkloadError
from repro.keywords.space import KeywordSpace
from repro.util.rng import RandomLike, as_generator

__all__ = ["FloodingStats", "FloodingNetwork"]


@dataclass
class FloodingStats:
    """Cost/recall accounting of one flooded query."""

    messages: int
    nodes_visited: int
    matches_found: int
    total_matches: int

    @property
    def recall(self) -> float:
        if self.total_matches == 0:
            return 1.0
        return self.matches_found / self.total_matches


class FloodingNetwork:
    """An unstructured P2P network with flooding search.

    Peers form a connected random ``degree``-regular graph; published keys
    land on uniformly random peers (there is no placement structure to
    exploit — that is the point of the baseline).
    """

    def __init__(
        self,
        space: KeywordSpace,
        n_nodes: int,
        degree: int = 4,
        rng: RandomLike = None,
    ) -> None:
        if n_nodes < degree + 1:
            raise WorkloadError(
                f"need more than {degree} nodes for a {degree}-regular graph"
            )
        if (n_nodes * degree) % 2:
            raise WorkloadError("n_nodes * degree must be even for a regular graph")
        self.space = space
        self.rng = as_generator(rng)
        seed = int(self.rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, n_nodes, seed=seed)
        attempts = 0
        while not nx.is_connected(graph):  # pragma: no cover - rare
            seed = int(self.rng.integers(0, 2**31 - 1))
            graph = nx.random_regular_graph(degree, n_nodes, seed=seed)
            attempts += 1
            if attempts > 100:
                raise WorkloadError("could not build a connected regular graph")
        self.graph = graph
        self.stores: dict[int, list[tuple[Any, Any]]] = {
            node: [] for node in graph.nodes
        }

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, key: Sequence[Any], payload: Any = None) -> int:
        """Place a data element on a uniformly random peer; returns the peer."""
        normalized = self.space.validate_key(key)
        node = int(self.rng.integers(0, len(self)))
        self.stores[node].append((normalized, payload))
        return node

    def publish_many(self, keys: Sequence[Sequence[Any]]) -> None:
        for key in keys:
            self.publish(key)

    def total_matches(self, query) -> int:
        q = self.space.as_query(query)
        return sum(
            1
            for store in self.stores.values()
            for key, _ in store
            if self.space.matches(key, q)
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def query(
        self, query, ttl: int | None = None, origin: int | None = None
    ) -> FloodingStats:
        """Flood the query with ``ttl`` hops (None = unbounded, full recall).

        Messages follow the Gnutella accounting: every edge traversal is one
        message; peers remember seen queries and do not re-flood, but
        duplicate arrivals still cost their message.
        """
        q = self.space.as_query(query)
        if origin is None:
            origin = int(self.rng.integers(0, len(self)))
        horizon = ttl if ttl is not None else self.graph.number_of_nodes()
        visited = {origin}
        matches = 0
        messages = 0
        frontier = deque([(origin, 0)])
        while frontier:
            node, depth = frontier.popleft()
            matches += sum(
                1 for key, _ in self.stores[node] if self.space.matches(key, q)
            )
            if depth >= horizon:
                continue
            for neighbor in self.graph.neighbors(node):
                messages += 1  # the query message crosses this edge
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, depth + 1))
        return FloodingStats(
            messages=messages,
            nodes_visited=len(visited),
            matches_found=matches,
            total_matches=self.total_matches(q),
        )
