"""Distributed inverted-index keyword search over plain Chord (paper §2).

The "structured keyword search" class the paper compares against (Gnawali's
Keyword-Set System, PeerSearch): each keyword is consistently hashed to a
Chord node that stores the posting list of keys containing it.  Multi-keyword
queries route to each keyword's node and intersect posting lists.

What this baseline shows, relative to Squid:

* exact whole-keyword search works and is cheap (O(#keywords · log N));
* but posting lists are transferred for intersection (Squid retrieves only
  elements matching *all* keywords, because placement uses all keywords);
* and partial keywords, wildcards, and ranges are **unsupported** — hashing
  destroys the locality Squid's SFC preserves.  These raise
  :class:`UnsupportedQueryError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import EngineError
from repro.keywords.query import Exact, Query, Wildcard
from repro.keywords.space import KeywordSpace
from repro.overlay.chord import ChordRing
from repro.util.rng import RandomLike, as_generator

__all__ = ["UnsupportedQueryError", "InvertedIndexStats", "InvertedIndexSystem"]


class UnsupportedQueryError(EngineError):
    """The inverted-index baseline cannot express this query."""


@dataclass
class InvertedIndexStats:
    """Cost accounting of one inverted-index query."""

    messages: int
    hops: int
    nodes_contacted: int
    entries_transferred: int
    matches: int


def _hash_keyword(keyword: str, bits: int) -> int:
    digest = hashlib.sha1(keyword.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


class InvertedIndexSystem:
    """Keyword posting lists over a Chord ring."""

    def __init__(
        self,
        space: KeywordSpace,
        n_nodes: int,
        bits: int = 32,
        rng: RandomLike = None,
    ) -> None:
        self.space = space
        self.rng = as_generator(rng)
        self.overlay = ChordRing.with_random_ids(bits, n_nodes, rng=self.rng)
        self.bits = bits
        # node id -> keyword -> set of full keys containing that keyword
        self.postings: dict[int, dict[str, set[tuple]]] = {
            nid: {} for nid in self.overlay.node_ids()
        }

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, key: Sequence[Any]) -> int:
        """Insert the key into every keyword's posting list; returns messages."""
        normalized = self.space.validate_key(key)
        messages = 0
        for keyword in normalized:
            node = self.overlay.owner(_hash_keyword(str(keyword), self.bits))
            self.postings[node].setdefault(str(keyword), set()).add(normalized)
            messages += 1  # one insert message routed per keyword
        return messages

    def publish_many(self, keys: Sequence[Sequence[Any]]) -> int:
        return sum(self.publish(key) for key in keys)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def query(self, query, origin: int | None = None) -> tuple[list[tuple], InvertedIndexStats]:
        """Resolve an exact multi-keyword query by posting-list intersection.

        Wildcards are allowed (they simply don't constrain), but partial
        keywords and ranges raise :class:`UnsupportedQueryError` — the
        baseline's fundamental limitation the paper calls out.
        """
        q = self.space.as_query(query)
        keywords = []
        for i, term in enumerate(q.terms):
            if isinstance(term, Wildcard):
                continue
            if not isinstance(term, Exact):
                raise UnsupportedQueryError(
                    f"inverted index cannot resolve term {term} "
                    "(partial keywords/ranges need locality, which hashing destroys)"
                )
            keywords.append((i, str(self.space.dimensions[i].validate(term.value))))
        if not keywords:
            raise UnsupportedQueryError(
                "inverted index cannot enumerate the whole corpus "
                "(no keyword specified)"
            )
        ids = self.overlay.node_ids()
        if origin is None:
            origin = ids[int(self.rng.integers(0, len(ids)))]

        messages = 0
        hops = 0
        contacted = []
        lists: list[tuple[int, set[tuple]]] = []
        for position, keyword in keywords:
            node = self.overlay.owner(_hash_keyword(keyword, self.bits))
            route = self.overlay.route(origin, _hash_keyword(keyword, self.bits))
            messages += 1
            hops += route.hops
            contacted.append(node)
            posting = self.postings[node].get(keyword, set())
            # Only keys whose *position* matches count (the posting list is
            # per keyword; position filtering happens at the requester).
            filtered = {key for key in posting if str(key[position]) == keyword}
            lists.append((position, filtered))

        # Intersection strategy: every contacted node ships its (filtered)
        # posting list back to the requester; each reply is one message and
        # transfers the list entries.
        entries = 0
        result: set[tuple] | None = None
        for _, posting in sorted(lists, key=lambda item: len(item[1])):
            messages += 1  # the posting-list reply
            hops += 1
            entries += len(posting)
            result = posting if result is None else (result & posting)
        matches = sorted(result) if result else []
        stats = InvertedIndexStats(
            messages=messages,
            hops=hops,
            nodes_contacted=len(set(contacted)),
            entries_transferred=entries,
            matches=len(matches),
        )
        return list(matches), stats
