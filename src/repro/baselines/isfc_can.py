"""Andrzejak & Xu's inverse-SFC range discovery over CAN (paper ref. [1]).

The one prior SFC-based P2P discovery system the paper discusses: a *single*
resource attribute (e.g. free memory) is mapped through the **inverse**
Hilbert curve from its 1-d value domain into CAN's d-dimensional zone space;
a range query becomes a connected region of that space, resolved by flooding
among the zones it touches.

Contrast with Squid (paper §2): this design indexes one attribute per
deployment ("to map a resource to peers based on a single attribute"),
whereas Squid encodes *all* keywords/attributes of the d-dimensional keyword
space into one index and can search on any combination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import KeywordError
from repro.keywords.dimensions import NumericDimension
from repro.overlay.can import CanOverlay, Zone
from repro.sfc.regions import Region
from repro.sfc.clusters import resolve_clusters
from repro.util.rng import RandomLike, as_generator

__all__ = ["RangeQueryStats", "InverseSfcCanSystem"]


@dataclass
class RangeQueryStats:
    """Cost accounting of one range query."""

    messages: int
    nodes_visited: int
    data_nodes: int
    matches: int


class InverseSfcCanSystem:
    """Single-attribute range discovery via inverse Hilbert over CAN."""

    def __init__(
        self,
        attribute: NumericDimension,
        n_nodes: int,
        bits: int = 16,
        can_dims: int = 2,
        rng: RandomLike = None,
    ) -> None:
        self.attribute = attribute
        self.bits = bits
        self.rng = as_generator(rng)
        self.overlay = CanOverlay(bits, can_dims)
        for _ in range(n_nodes):
            self.overlay.join(self.rng)
        # node id -> list of (value, payload)
        self.stores: dict[int, list[tuple[float, Any]]] = {
            nid: [] for nid in self.overlay.node_ids()
        }
        self._zone_ranges: dict[Zone, list[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self.overlay.node_ids())

    # ------------------------------------------------------------------
    # Value geometry
    # ------------------------------------------------------------------
    def index_of(self, value: float) -> int:
        """1-d curve index of an attribute value."""
        return self.attribute.encode(value, self.bits)

    def _zone_index_ranges(self, zone: Zone) -> list[tuple[int, int]]:
        """The curve-index intervals whose inverse image lies in the zone."""
        cached = self._zone_ranges.get(zone)
        if cached is None:
            region = Region.from_bounds(list(zip(zone.lows, zone.highs)))
            cached = resolve_clusters(self.overlay.curve, region)
            self._zone_ranges[zone] = cached
        return cached

    def _zone_intersects(self, zone: Zone, low: int, high: int) -> bool:
        return any(
            not (hi < low or high < lo) for lo, hi in self._zone_index_ranges(zone)
        )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, value: float, payload: Any = None) -> int:
        """Store a resource advertisement at the zone owning its image."""
        v = self.attribute.validate(value)
        node = self.overlay.owner(self.index_of(v))
        self.stores[node].append((v, payload))
        return node

    def publish_many(self, values) -> None:
        for value in values:
            self.publish(value)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def query_range(
        self,
        low: float | None,
        high: float | None,
        origin: int | None = None,
    ) -> tuple[list[tuple[float, Any]], RangeQueryStats]:
        """All advertised values in ``[low, high]`` (None ends are open).

        Routes to the zone owning the range's low end, then floods among
        face-adjacent zones whose inverse-curve image intersects the range —
        the continuity of the Hilbert curve guarantees those zones form a
        connected patch, so local flooding reaches them all.
        """
        lo_v = self.attribute.minimum if low is None else self.attribute.validate(low)
        hi_v = self.attribute.maximum if high is None else self.attribute.validate(high)
        if lo_v > hi_v:
            raise KeywordError(f"empty range [{lo_v}, {hi_v}]")
        lo_idx, hi_idx = self.index_of(lo_v), self.index_of(hi_v)

        ids = self.overlay.node_ids()
        if origin is None:
            origin = ids[int(self.rng.integers(0, len(ids)))]
        entry_route = self.overlay.route(origin, lo_idx)
        messages = entry_route.hops
        entry = entry_route.destination

        matches: list[tuple[float, Any]] = []
        data_nodes = 0
        visited = {entry}
        frontier = deque([entry])
        while frontier:
            node = frontier.popleft()
            found = [
                (v, p) for v, p in self.stores[node] if lo_v <= v <= hi_v
            ]
            if found:
                matches.extend(found)
                data_nodes += 1
            for neighbor in self.overlay.neighbors(node):
                if neighbor in visited:
                    continue
                if any(
                    self._zone_intersects(zone, lo_idx, hi_idx)
                    for zone in self.overlay.zones[neighbor]
                ):
                    visited.add(neighbor)
                    messages += 1
                    frontier.append(neighbor)
        stats = RangeQueryStats(
            messages=messages,
            nodes_visited=len(visited),
            data_nodes=data_nodes,
            matches=len(matches),
        )
        return matches, stats
