"""Keyword-Set System baseline (Gnawali, MIT 2002 — paper ref [7]).

KSS is the paper's other structured keyword-search comparator: instead of
one posting list per keyword (the inverted index), it builds posting lists
for keyword *sets* up to a fixed size.  A multi-keyword query whose
keywords fit in one set needs a **single lookup** and transfers only
already-intersected entries — at the cost of publishing every subset
(storage and insert traffic grow combinatorially with the set size).

Relative to Squid the limitation is the same as the inverted index's:
hashing keyword sets destroys locality, so partial keywords, wildcards and
ranges are unsupported.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import combinations
from typing import Any, Sequence

from repro.baselines.inverted import UnsupportedQueryError
from repro.errors import EngineError
from repro.keywords.query import Exact, Wildcard
from repro.keywords.space import KeywordSpace
from repro.overlay.chord import ChordRing
from repro.util.rng import RandomLike, as_generator

__all__ = ["KeywordSetStats", "KeywordSetSystem"]


@dataclass
class KeywordSetStats:
    """Cost accounting of one KSS query."""

    messages: int
    hops: int
    entries_transferred: int
    matches: int
    set_size_used: int


def _hash_set(keywords: tuple[tuple[int, str], ...], bits: int) -> int:
    # Position-tagged keywords so ("a", *) and (*, "a") hash apart.
    text = "|".join(f"{pos}:{word}" for pos, word in keywords)
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


class KeywordSetSystem:
    """Posting lists per keyword subset over a Chord ring."""

    def __init__(
        self,
        space: KeywordSpace,
        n_nodes: int,
        set_size: int = 2,
        bits: int = 32,
        rng: RandomLike = None,
    ) -> None:
        if set_size < 1:
            raise EngineError(f"set_size must be >= 1, got {set_size}")
        self.space = space
        self.set_size = set_size
        self.bits = bits
        self.rng = as_generator(rng)
        self.overlay = ChordRing.with_random_ids(bits, n_nodes, rng=self.rng)
        # node id -> frozen keyword-set -> set of full keys
        self.postings: dict[int, dict[tuple, set[tuple]]] = {
            nid: {} for nid in self.overlay.node_ids()
        }
        self.publish_messages = 0

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _subsets(self, key: tuple) -> list[tuple[tuple[int, str], ...]]:
        tagged = tuple((i, str(v)) for i, v in enumerate(key))
        out = []
        for size in range(1, min(self.set_size, len(tagged)) + 1):
            out.extend(combinations(tagged, size))
        return out

    def publish(self, key: Sequence[Any]) -> int:
        """Insert the key under every keyword subset; returns messages."""
        normalized = self.space.validate_key(key)
        messages = 0
        for subset in self._subsets(normalized):
            node = self.overlay.owner(_hash_set(subset, self.bits))
            self.postings[node].setdefault(subset, set()).add(normalized)
            messages += 1
        self.publish_messages += messages
        return messages

    def publish_many(self, keys: Sequence[Sequence[Any]]) -> int:
        return sum(self.publish(key) for key in keys)

    def storage_entries(self) -> int:
        """Total posting entries stored (the KSS space overhead)."""
        return sum(
            len(keys) for node in self.postings.values() for keys in node.values()
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def query(
        self, query, origin: int | None = None
    ) -> tuple[list[tuple], KeywordSetStats]:
        """Resolve an exact multi-keyword query with one set lookup.

        The largest ``set_size`` specified keywords form the lookup set; any
        remaining specified keywords are filtered at the requester.
        """
        q = self.space.as_query(query)
        specified: list[tuple[int, str]] = []
        for i, term in enumerate(q.terms):
            if isinstance(term, Wildcard):
                continue
            if not isinstance(term, Exact):
                raise UnsupportedQueryError(
                    f"keyword-set system cannot resolve term {term}"
                )
            specified.append((i, str(self.space.dimensions[i].validate(term.value))))
        if not specified:
            raise UnsupportedQueryError("keyword-set system needs at least one keyword")

        lookup = tuple(specified[: self.set_size])
        rest = specified[self.set_size :]

        ids = self.overlay.node_ids()
        if origin is None:
            origin = ids[int(self.rng.integers(0, len(ids)))]
        target = _hash_set(lookup, self.bits)
        route = self.overlay.route(origin, target)
        node = route.destination
        posting = self.postings[node].get(lookup, set())
        # Position filter for the looked-up set happens at the posting node.
        candidates = {
            key
            for key in posting
            if all(str(key[pos]) == word for pos, word in lookup)
        }
        matches = sorted(
            key
            for key in candidates
            if all(str(key[pos]) == word for pos, word in rest)
        )
        stats = KeywordSetStats(
            messages=2,  # the lookup + the posting-list reply
            hops=route.hops + 1,
            entries_transferred=len(candidates),
            matches=len(matches),
            set_size_used=len(lookup),
        )
        return list(matches), stats
