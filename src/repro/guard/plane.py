"""Per-node load guards: bounded queues, token buckets, priority classes.

The :class:`GuardPlane` tracks, per node, how many work entries are
*pending* (posted but not yet processed) and decides at processing time
whether the node accepts the entry or sheds it.  Three guards compose:

``queue_high`` / ``queue_low``
    Watermarks on the pending backlog with a hysteresis latch: once the
    backlog behind an entry exceeds ``queue_high`` the node enters the
    *overloaded* state and sheds every non-protected entry until the
    backlog drains to ``queue_low``.  The latch prevents flapping at the
    boundary.
``queue_limit``
    A hard per-node bound.  At or above it the node sheds *every*
    priority class, protected or not — the backstop that keeps a node's
    queue finite no matter the traffic mix.
``bucket_capacity`` / ``bucket_refill``
    A per-node token bucket throttling the node's processing rate for
    non-protected classes.  The bucket runs on the plane's **logical
    clock** — one tick per entry processed anywhere under the plane — so
    refill is proportional to system-wide progress, decisions are
    deterministic, and no wall clock or RNG is consumed.

Priority classes (``interactive`` = 0, ``batch`` = 1, ``background`` = 2)
rank sheddability: ranks at or below ``protected_rank`` bypass the
watermarks and the bucket and can only be shed by ``queue_limit``.

Accounting is conservative and explicit: transports call
:meth:`GuardPlane.note_posted` when they enqueue an entry,
:meth:`GuardPlane.admit` when a node is about to process it, and
:meth:`GuardPlane.note_abandoned` for entries discarded unprocessed
(discovery-limit early stop, stale envelopes), so the pending gauge does
not drift.  ``guard.*`` metrics are emitted only when a guard actually
trips, keeping zero-overload metric registries byte-identical to
unguarded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GuardError
from repro.obs import metrics as obs_metrics

__all__ = [
    "PRIORITIES",
    "GuardConfig",
    "GuardPlane",
    "GuardStats",
    "TokenBucket",
    "priority_name",
    "priority_rank",
]

#: Priority class names in rank order: rank 0 is the most protected.
PRIORITIES = ("interactive", "batch", "background")


def priority_rank(priority) -> int:
    """Normalize a priority (name, rank, or ``None``) to its numeric rank.

    ``None`` means "unspecified" and maps to rank 0 (``interactive``) so
    that existing callers keep today's behavior: unclassified traffic is
    never shed by watermarks or buckets, only by the hard queue limit.
    """
    if priority is None:
        return 0
    if isinstance(priority, bool):
        raise GuardError(f"invalid priority {priority!r}")
    if isinstance(priority, int):
        if 0 <= priority < len(PRIORITIES):
            return priority
        raise GuardError(
            f"priority rank {priority} out of range 0..{len(PRIORITIES) - 1}"
        )
    if isinstance(priority, str):
        try:
            return PRIORITIES.index(priority)
        except ValueError:
            raise GuardError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            ) from None
    raise GuardError(f"invalid priority {priority!r}")


def priority_name(rank: int) -> str:
    """The class name for a numeric rank (inverse of :func:`priority_rank`)."""
    return PRIORITIES[priority_rank(rank)]


class TokenBucket:
    """A token bucket on a caller-supplied monotone logical clock.

    ``take(now)`` first credits ``refill`` tokens per clock tick elapsed
    since the last call (capped at ``capacity``), then spends one token if
    available.  With an integer logical clock the arithmetic is exact and
    platform-independent, so a guarded run is reproducible bit-for-bit.
    """

    __slots__ = ("capacity", "refill", "tokens", "last_tick")

    def __init__(self, capacity: int, refill: float, now: int = 0) -> None:
        if capacity < 1:
            raise GuardError(f"bucket capacity must be >= 1, got {capacity}")
        if refill < 0:
            raise GuardError(f"bucket refill must be >= 0, got {refill}")
        self.capacity = capacity
        self.refill = refill
        self.tokens = float(capacity)
        self.last_tick = now

    def take(self, now: int) -> bool:
        """Credit elapsed refill, then consume one token; False if dry."""
        if now > self.last_tick:
            self.tokens = min(
                float(self.capacity),
                self.tokens + (now - self.last_tick) * self.refill,
            )
            self.last_tick = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class GuardConfig:
    """Guard thresholds; all limits default to off (an inert plane).

    ``queue_low`` defaults to half of ``queue_high``.  ``protected_rank``
    is the highest rank that bypasses watermark/bucket shedding (0 means
    only ``interactive`` is protected; -1 protects nothing).
    """

    queue_high: int | None = None
    queue_low: int | None = None
    queue_limit: int | None = None
    bucket_capacity: int | None = None
    bucket_refill: float = 1.0
    protected_rank: int = 0

    def __post_init__(self) -> None:
        if self.queue_high is not None and self.queue_high < 1:
            raise GuardError(f"queue_high must be >= 1, got {self.queue_high}")
        if self.queue_low is not None:
            if self.queue_high is None:
                raise GuardError("queue_low requires queue_high")
            if not 0 <= self.queue_low <= self.queue_high:
                raise GuardError(
                    f"queue_low must be in 0..queue_high, got {self.queue_low}"
                )
        if self.queue_limit is not None:
            if self.queue_limit < 1:
                raise GuardError(
                    f"queue_limit must be >= 1, got {self.queue_limit}"
                )
            if self.queue_high is not None and self.queue_limit < self.queue_high:
                raise GuardError("queue_limit must be >= queue_high")
        if self.bucket_capacity is not None and self.bucket_capacity < 1:
            raise GuardError(
                f"bucket_capacity must be >= 1, got {self.bucket_capacity}"
            )
        if self.bucket_refill < 0:
            raise GuardError(
                f"bucket_refill must be >= 0, got {self.bucket_refill}"
            )
        if not -1 <= self.protected_rank < len(PRIORITIES):
            raise GuardError(
                f"protected_rank must be in -1..{len(PRIORITIES) - 1}, "
                f"got {self.protected_rank}"
            )

    @property
    def active(self) -> bool:
        """True if any guard is configured; an inactive plane is bypassed."""
        return (
            self.queue_high is not None
            or self.queue_limit is not None
            or self.bucket_capacity is not None
        )

    @property
    def low_watermark(self) -> int:
        """The effective low watermark (defaults to ``queue_high // 2``)."""
        if self.queue_low is not None:
            return self.queue_low
        return (self.queue_high or 0) // 2


@dataclass
class GuardStats:
    """Counters of what the plane did; reported by the bench and tests."""

    admitted: int = 0
    shed_queue: int = 0
    shed_throttle: int = 0
    overload_events: int = 0
    abandoned: int = 0
    max_pending: int = 0
    shed_by_class: dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """Total entries shed, across queue and throttle guards."""
        return self.shed_queue + self.shed_throttle

    def as_dict(self) -> dict:
        """Plain-dict snapshot (stable keys, JSON-serializable)."""
        return {
            "admitted": self.admitted,
            "shed_queue": self.shed_queue,
            "shed_throttle": self.shed_throttle,
            "shed": self.shed,
            "overload_events": self.overload_events,
            "abandoned": self.abandoned,
            "max_pending": self.max_pending,
            "shed_by_class": dict(sorted(self.shed_by_class.items())),
        }


class _NodeGuard:
    """Mutable per-node state: pending gauge, overload latch, bucket."""

    __slots__ = ("pending", "overloaded", "bucket")

    def __init__(self, bucket: TokenBucket | None) -> None:
        self.pending = 0
        self.overloaded = False
        self.bucket = bucket


class GuardPlane:
    """The per-node overload guards for every node under one engine.

    One plane instance is shared by every run of the engine(s) it is
    attached to, so the pending gauges see *concurrent* load — that is
    the point.  The plane is single-threaded state (asyncio or the sync
    pump); under the multiprocess :class:`~repro.exec.pool.QueryPool`
    each worker holds its own forked copy, so guard studies should run
    with ``workers=1`` (the same caveat as the fault plane).
    """

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config or GuardConfig()
        self.stats = GuardStats()
        self.clock = 0
        self._nodes: dict[int, _NodeGuard] = {}

    @property
    def active(self) -> bool:
        """False when no guard is configured: engines bypass the plane."""
        return self.config.active

    def _node(self, node_id: int) -> _NodeGuard:
        guard = self._nodes.get(node_id)
        if guard is None:
            cfg = self.config
            bucket = (
                TokenBucket(cfg.bucket_capacity, cfg.bucket_refill, self.clock)
                if cfg.bucket_capacity is not None
                else None
            )
            guard = self._nodes[node_id] = _NodeGuard(bucket)
        return guard

    def note_posted(self, node_id: int) -> None:
        """A work entry was enqueued for ``node_id`` (raises its gauge)."""
        guard = self._node(node_id)
        guard.pending += 1
        if guard.pending > self.stats.max_pending:
            self.stats.max_pending = guard.pending

    def note_abandoned(self, node_id: int) -> None:
        """An enqueued entry was discarded unprocessed (early stop, stale)."""
        guard = self._node(node_id)
        if guard.pending > 0:
            guard.pending -= 1
        self.stats.abandoned += 1

    def pending(self, node_id: int) -> int:
        """Current pending gauge for ``node_id`` (test/observability hook)."""
        guard = self._nodes.get(node_id)
        return guard.pending if guard is not None else 0

    def admit(self, node_id: int, rank: int = 0) -> bool:
        """Decide whether ``node_id`` processes the next entry or sheds it.

        Called exactly once per posted entry, right before processing;
        lowers the pending gauge either way.  The *backlog* a decision
        sees is the queue depth behind this entry.  Returns False when
        the entry must be shed.
        """
        guard = self._node(node_id)
        self.clock += 1
        if guard.pending > 0:
            guard.pending -= 1
        backlog = guard.pending
        cfg = self.config
        if cfg.queue_limit is not None and backlog >= cfg.queue_limit:
            return self._shed(rank, "queue")
        if rank > cfg.protected_rank:
            if guard.overloaded:
                if backlog <= cfg.low_watermark:
                    guard.overloaded = False
                else:
                    return self._shed(rank, "queue")
            elif cfg.queue_high is not None and backlog > cfg.queue_high:
                guard.overloaded = True
                self.stats.overload_events += 1
                registry = obs_metrics.active()
                if registry is not None:
                    registry.counter("guard.overload_events.total").inc()
                return self._shed(rank, "queue")
            if guard.bucket is not None and not guard.bucket.take(self.clock):
                return self._shed(rank, "throttle")
        self.stats.admitted += 1
        return True

    def _shed(self, rank: int, reason: str) -> bool:
        """Record one shed decision (stats + metrics); always False."""
        if reason == "queue":
            self.stats.shed_queue += 1
        else:
            self.stats.shed_throttle += 1
        name = PRIORITIES[rank]
        by_class = self.stats.shed_by_class
        by_class[name] = by_class.get(name, 0) + 1
        registry = obs_metrics.active()
        if registry is not None:
            registry.counter("guard.sheds.total").inc()
            registry.counter(f"guard.sheds.{reason}").inc()
        return False
