"""``repro.guard`` — the overload-protection plane.

Production traffic makes overload normal, not exceptional: wildcard and
range queries fan out across many nodes, so one expensive query class can
starve cheap ones.  This package supplies the guards (see
``docs/overload.md``):

* :class:`GuardConfig` / :class:`GuardPlane` — per-node load guards:
  bounded work queues with high/low watermarks (hysteresis latch) and
  token-bucket message-rate throttles, enforced inside both engines'
  ``process_message`` path.  An overloaded node *sheds* branch work —
  honestly, as a ``complete=False`` partial result with the shed windows
  in ``unresolved_ranges`` — instead of absorbing it.
* :data:`PRIORITIES` / :func:`priority_rank` — query priority classes
  (``interactive`` / ``batch`` / ``background``) threaded through
  ``SquidSystem.query``, the pool, the run API, and the HTTP server.
  Protected (interactive) work is never shed by watermarks or buckets,
  only by the hard per-node queue limit.
* :class:`TokenBucket` — a deterministic token bucket on the plane's
  logical clock (one tick per processed entry), so guard decisions are
  reproducible and consume no RNG.

Like the fault plane, an inactive guard (no limits configured) is
bypassed entirely: results, stats, metrics, and fault-RNG streams are
bit-identical to an unguarded engine until a guard actually trips.
"""

from repro.guard.plane import (
    PRIORITIES,
    GuardConfig,
    GuardPlane,
    GuardStats,
    TokenBucket,
    priority_name,
    priority_rank,
)

__all__ = [
    "PRIORITIES",
    "GuardConfig",
    "GuardPlane",
    "GuardStats",
    "TokenBucket",
    "priority_name",
    "priority_rank",
]
