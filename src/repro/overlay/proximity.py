"""Proximity-aware overlay — the paper's geographic-locality future work.

The paper's §5 lists "maintenance of geographical locality in the overlay
network" among its extensions.  The established DHT technique is *proximity
neighbor selection* (PNS, from the Chord/Pastry literature): Chord's
``finger[i]`` may correctly be **any** node in the identifier interval
``[n + 2^i, n + 2^(i+1))`` — routing stays O(log N) hops — so each node
picks the *lowest-latency* candidate in that interval instead of the first.

This module provides

* :class:`LatencyModel` — peers embedded in a Euclidean plane (the standard
  network-coordinates abstraction); message latency = distance;
* :class:`ProximityChordRing` — a Chord ring whose fingers are chosen by
  PNS against a latency model, plus per-path latency accounting.

The bench (``benchmarks/test_proximity.py``) shows PNS cutting per-lookup
latency substantially at identical hop counts.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.errors import NodeNotFoundError, OverlayError
from repro.overlay.chord import ChordRing
from repro.util.rng import RandomLike, as_generator

__all__ = ["LatencyModel", "ProximityChordRing"]


@dataclass
class LatencyModel:
    """Peers at 2-D plane coordinates; latency between peers = distance.

    ``scale`` sets the plane's side length (think milliseconds across a
    continent).  Unknown nodes raise — the model must cover the ring.
    """

    coordinates: dict[int, tuple[float, float]]
    scale: float = 100.0

    @classmethod
    def random(
        cls, node_ids: list[int], scale: float = 100.0, rng: RandomLike = None
    ) -> "LatencyModel":
        gen = as_generator(rng)
        coords = {
            node_id: (float(gen.uniform(0, scale)), float(gen.uniform(0, scale)))
            for node_id in node_ids
        }
        return cls(coordinates=coords, scale=scale)

    def add_node(self, node_id: int, rng: RandomLike = None) -> None:
        gen = as_generator(rng)
        self.coordinates[node_id] = (
            float(gen.uniform(0, self.scale)),
            float(gen.uniform(0, self.scale)),
        )

    def latency(self, a: int, b: int) -> float:
        try:
            xa, ya = self.coordinates[a]
            xb, yb = self.coordinates[b]
        except KeyError as exc:
            raise NodeNotFoundError(f"no coordinates for node {exc}") from None
        return float(np.hypot(xa - xb, ya - yb))

    def path_latency(self, path: tuple[int, ...]) -> float:
        return sum(self.latency(a, b) for a, b in zip(path, path[1:]))


class ProximityChordRing(ChordRing):
    """Chord with proximity neighbor selection.

    ``finger[i]`` is chosen among up to ``candidates`` nodes of the valid
    interval ``[n + 2^i, n + 2^(i+1))`` by lowest latency to ``n``;
    correctness is untouched because every candidate "succeeds n by at
    least 2^i" (the paper's §3.2 finger definition).
    """

    def __init__(self, bits: int, model: LatencyModel, candidates: int = 8) -> None:
        super().__init__(bits)
        if candidates < 1:
            raise OverlayError(f"candidates must be >= 1, got {candidates}")
        self.model = model
        self.candidates = candidates

    @classmethod
    def build_with_model(
        cls,
        bits: int,
        ids: list[int],
        model: LatencyModel | None = None,
        candidates: int = 8,
        rng: RandomLike = None,
    ) -> "ProximityChordRing":
        unique = sorted({int(i) for i in ids})
        if model is None:
            model = LatencyModel.random(unique, rng=rng)
        ring = cls(bits, model, candidates=candidates)
        from repro.overlay.chord import ChordNode

        for node_id in unique:
            if not 0 <= node_id < ring.space:
                raise OverlayError(f"identifier {node_id} outside [0, {ring.space})")
            ring.nodes[node_id] = ChordNode(node_id, bits)
        ring._sorted_ids = unique
        for node in ring.nodes.values():
            ring._refresh_node_state(node)
        return ring

    # ------------------------------------------------------------------
    # PNS finger selection
    # ------------------------------------------------------------------
    def _finger_interval_ids(self, node_id: int, level: int) -> list[int]:
        """Live node ids in ``[node_id + 2^level, node_id + 2^(level+1))``."""
        low = (node_id + (1 << level)) % self.space
        high = (node_id + (1 << (level + 1))) % self.space
        out: list[int] = []
        if low < high:
            pos = bisect_left(self._sorted_ids, low)
            while pos < len(self._sorted_ids) and self._sorted_ids[pos] < high:
                out.append(self._sorted_ids[pos])
                pos += 1
        else:  # wrapped interval
            pos = bisect_left(self._sorted_ids, low)
            out.extend(self._sorted_ids[pos:])
            pos = 0
            while pos < len(self._sorted_ids) and self._sorted_ids[pos] < high:
                out.append(self._sorted_ids[pos])
                pos += 1
        return out

    def _refresh_node_state(self, node) -> None:
        node.successor = self.successor_id(node.id)
        node.predecessor = self.predecessor_id(node.id)
        for i in range(self.bits):
            interval = self._finger_interval_ids(node.id, i)
            if not interval:
                # Empty interval: fall back to the classic finger target.
                node.fingers[i] = self.owner((node.id + (1 << i)) % self.space)
                continue
            pool = interval[: self.candidates]
            node.fingers[i] = min(pool, key=lambda nid: self.model.latency(node.id, nid))

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------
    def route_latency(self, source: int, key: int) -> tuple[float, int]:
        """Route and return ``(total_latency, hops)``."""
        result = self.route(source, key)
        return self.model.path_latency(result.path), result.hops
