"""Structured overlay networks: Chord (primary) and CAN (ablation/baseline)."""

from repro.overlay.base import (
    Overlay,
    RouteResult,
    ring_contains_open_closed,
    ring_contains_open_open,
)
from repro.overlay.can import CanOverlay, Zone
from repro.overlay.chord import ChordNode, ChordRing
from repro.overlay.pastry import PastryNode, PastryOverlay
from repro.overlay.proximity import LatencyModel, ProximityChordRing

__all__ = [
    "Overlay",
    "RouteResult",
    "ring_contains_open_closed",
    "ring_contains_open_open",
    "ChordNode",
    "ChordRing",
    "CanOverlay",
    "Zone",
    "PastryOverlay",
    "PastryNode",
    "LatencyModel",
    "ProximityChordRing",
]
