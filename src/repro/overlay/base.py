"""Overlay-network interface shared by Chord and CAN.

The query engine needs exactly three things from an overlay: the identifier
space width, an *ownership* oracle (which node stores a key) and a *routing*
primitive that reports the path a message would take hop by hop — the paper's
metrics (routing nodes, messages) are derived from those paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RouteResult", "Overlay", "ring_contains_open_closed", "ring_contains_open_open"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a message from ``source`` toward ``key``.

    ``path`` lists the node identifiers traversed, starting with the source
    and ending with the destination (the key's owner).  ``hops`` is
    ``len(path) - 1``: the number of messages sent on the wire.
    """

    key: int
    path: tuple[int, ...] = field(default_factory=tuple)

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def destination(self) -> int:
        return self.path[-1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class Overlay(ABC):
    """A structured overlay over the identifier space ``[0, 2**bits)``."""

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.space = 1 << bits

    @abstractmethod
    def node_ids(self) -> list[int]:
        """Sorted identifiers of all live nodes."""

    @abstractmethod
    def owner(self, key: int) -> int:
        """Identifier of the node responsible for ``key`` (oracle, no messages)."""

    def owner_many(self, keys) -> "np.ndarray":
        """Owners of many keys at once (oracle); returns an int64 array.

        The base implementation loops over :meth:`owner`; ring overlays
        with a sorted identifier list override it with one vectorized
        ``searchsorted`` (see :meth:`ChordRing.owner_many`).  Bulk callers
        — ``publish_many``, the parallel query pool's system rebuild — use
        this instead of re-deriving per-element ownership.
        """
        return np.array([self.owner(int(k)) for k in keys], dtype=np.int64)

    @abstractmethod
    def route(self, source: int, key: int) -> RouteResult:
        """Route from node ``source`` to the owner of ``key`` using only the
        overlay's local state (finger tables / neighbor zones)."""

    def __len__(self) -> int:
        return len(self.node_ids())


def ring_contains_open_closed(value: int, low: int, high: int, space: int) -> bool:
    """True if ``value`` lies in the ring interval ``(low, high]`` modulo ``space``.

    When ``low == high`` the interval is the whole ring (a single node owns
    everything), matching Chord conventions.
    """
    value %= space
    low %= space
    high %= space
    if low < high:
        return low < value <= high
    if low > high:
        return value > low or value <= high
    return True


def ring_contains_open_open(value: int, low: int, high: int, space: int) -> bool:
    """True if ``value`` lies in the ring interval ``(low, high)`` modulo ``space``."""
    value %= space
    low %= space
    high %= space
    if low < high:
        return low < value < high
    if low > high:
        return value > low or value < high
    # (x, x) covers the whole ring except x itself.
    return value != low
