"""Chord overlay network (Stoica et al., SIGCOMM'01), as used by the paper.

Node identifiers live on the ring ``[0, 2**bits)``; a key is stored at its
*successor* — the first node whose identifier is >= the key (mod ring).  Each
node keeps ``bits`` fingers, ``finger[i] = successor(n + 2**i)``, and routes
greedily through the closest preceding finger, giving O(log N) hops.

Fidelity notes
--------------
* :meth:`ChordRing.route` uses **only local finger/successor state**, so hop
  counts and paths match what a real deployment would produce.
* :meth:`ChordRing.owner` is the oracle shortcut (bisect over sorted ids) for
  bookkeeping that a real node would learn by routing; the engine always
  charges messages through :meth:`route`.
* Joins, graceful departures and crash failures are modelled, including
  stale fingers after a crash and the paper's periodic stabilization (§3.2
  "each node periodically ... chooses a random entry in its finger table,
  checks for its state, and updates it if required").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

import numpy as np

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.obs import metrics as obs_metrics
from repro.overlay.base import (
    Overlay,
    RouteResult,
    ring_contains_open_closed,
    ring_contains_open_open,
)
from repro.util.rng import RandomLike, as_generator

__all__ = ["ChordNode", "ChordRing", "RouteCache"]

_MAX_ROUTE_HOPS_FACTOR = 4  # Safety net against routing loops on stale state.


class RouteCache:
    """Memo of greedy routes for the ring's *current* routing state.

    Entries map ``(source, owner)`` to the path :meth:`ChordRing.route`
    would walk from ``source`` to any key owned by ``owner``.  Keying on
    the owner (not the key) is exact: every routing decision — finger
    selection and both termination checks — tests the key only against
    *live node identifiers*, and the ownership interval ``(predecessor,
    owner]`` contains no live identifier below ``owner``; hence two keys
    with the same owner take the identical path from the same source.

    The cache is a pure simulator optimization: cached deliveries still
    report the same ``overlay.routes`` / ``overlay.route_hops`` metrics and
    the same :class:`RouteResult` paths, so the modelled protocol costs are
    unchanged.  Any mutation of routing state (join, leave, crash, rename,
    stabilization repair, finger rebuild) must :meth:`invalidate` the whole
    memo — the ring's membership methods do this; hit/miss/invalidation
    counts are published as ``overlay.route_cache.*``.
    """

    __slots__ = ("maxsize", "_paths")

    def __init__(self, maxsize: int = 262_144) -> None:
        self.maxsize = maxsize
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}

    def get(self, source: int, owner: int) -> tuple[int, ...] | None:
        return self._paths.get((source, owner))

    def put(self, source: int, owner: int, path: tuple[int, ...]) -> None:
        if len(self._paths) >= self.maxsize:
            # Full: drop everything rather than track recency — refills are
            # cheap relative to the sweep workloads the cache serves.
            self._paths.clear()
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("overlay.route_cache.evictions").inc()
        self._paths[(source, owner)] = path

    def invalidate(self) -> None:
        if not self._paths:
            return
        self._paths.clear()
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.route_cache.invalidations").inc()

    def __len__(self) -> int:
        return len(self._paths)


class ChordNode:
    """Local state of one Chord peer: successor list, predecessor, fingers."""

    __slots__ = ("id", "successor", "predecessor", "fingers", "successor_list")

    #: Entries kept in the successor list (Chord's r parameter): routing
    #: survives up to r consecutive successor failures without repair.
    SUCCESSOR_LIST_SIZE = 4

    def __init__(self, node_id: int, bits: int) -> None:
        self.id = node_id
        self.successor = node_id
        self.predecessor = node_id
        # finger[i] targets successor(id + 2**i); initialised to self and
        # filled in by the ring on join/build.
        self.fingers: list[int] = [node_id] * bits
        # The next r nodes on the ring (fault-tolerant successor fallback).
        self.successor_list: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChordNode(id={self.id}, successor={self.successor})"


class ChordRing(Overlay):
    """A complete simulated Chord ring."""

    def __init__(self, bits: int) -> None:
        super().__init__(bits)
        self.nodes: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        #: Per-ring route memo (see :class:`RouteCache`); set to ``None`` to
        #: disable caching entirely (every route re-walks the fingers).
        self.route_cache: RouteCache | None = RouteCache()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, bits: int, ids: list[int] | np.ndarray) -> "ChordRing":
        """Bulk-construct a ring with correct fingers for all ``ids``.

        This is the fast path for large experiments (the incremental
        :meth:`join` models protocol behaviour; ``build`` just materialises
        the converged state directly).
        """
        ring = cls(bits)
        unique = sorted({int(i) for i in ids})
        if len(unique) != len(ids):
            raise DuplicateNodeError("duplicate identifiers in bulk build")
        for node_id in unique:
            if not 0 <= node_id < ring.space:
                raise OverlayError(f"identifier {node_id} outside [0, {ring.space})")
            ring.nodes[node_id] = ChordNode(node_id, bits)
        ring._sorted_ids = unique
        for node in ring.nodes.values():
            ring._refresh_node_state(node)
        return ring

    @classmethod
    def with_random_ids(
        cls, bits: int, count: int, rng: RandomLike = None
    ) -> "ChordRing":
        """Ring of ``count`` nodes with uniformly random identifiers."""
        gen = as_generator(rng)
        ring = cls(bits)
        ids: set[int] = set()
        while len(ids) < count:
            need = count - len(ids)
            draw = gen.integers(0, ring.space, size=need, dtype=np.uint64)
            ids.update(int(x) for x in draw)
        return cls.build(bits, sorted(ids))

    # ------------------------------------------------------------------
    # Oracle lookups (no messages)
    # ------------------------------------------------------------------
    def node_ids(self) -> list[int]:
        """Sorted identifiers of all live nodes."""
        return list(self._sorted_ids)

    def owner(self, key: int) -> int:
        """Successor of ``key``: the node storing it."""
        if not self._sorted_ids:
            raise EmptyOverlayError("ring has no nodes")
        key %= self.space
        pos = bisect_left(self._sorted_ids, key)
        if pos == len(self._sorted_ids):
            return self._sorted_ids[0]
        return self._sorted_ids[pos]

    def owner_many(self, keys) -> np.ndarray:
        """Vectorized :meth:`owner`: one ``searchsorted`` over the ring.

        Falls back to the scalar loop when the identifier space exceeds
        int64 (curve geometries beyond 63 index bits).
        """
        if not self._sorted_ids:
            raise EmptyOverlayError("ring has no nodes")
        if self.space > 2**63:
            return super().owner_many(keys)
        arr = np.asarray(list(keys), dtype=np.int64) % self.space
        node_ids = np.asarray(self._sorted_ids, dtype=np.int64)
        positions = np.searchsorted(node_ids, arr)
        return node_ids[positions % len(node_ids)]

    def predecessor_id(self, node_id: int) -> int:
        """Identifier of the node preceding ``node_id`` on the ring."""
        self._require(node_id)
        pos = bisect_left(self._sorted_ids, node_id)
        return self._sorted_ids[pos - 1] if pos > 0 else self._sorted_ids[-1]

    def successor_id(self, node_id: int) -> int:
        """Identifier of the node following ``node_id`` on the ring."""
        self._require(node_id)
        pos = bisect_right(self._sorted_ids, node_id)
        return self._sorted_ids[pos % len(self._sorted_ids)]

    def owner_range(self, node_id: int) -> tuple[int, int]:
        """The ``(predecessor, node]`` key range owned by ``node_id``.

        Returned as the pair ``(predecessor_id, node_id)``; use ring-interval
        membership to test keys against it.
        """
        return self.predecessor_id(node_id), node_id

    # ------------------------------------------------------------------
    # Routing (messages)
    # ------------------------------------------------------------------
    def route(self, source: int, key: int) -> RouteResult:
        """Greedy finger routing from ``source`` to ``successor(key)``.

        Dead fingers (crashed, not yet repaired) are skipped the way a live
        protocol would time them out; the safety cap aborts pathological
        loops that could only arise from heavily corrupted state.

        Repeated routes between the same (source, owner interval) pair are
        served from :attr:`route_cache` when one is attached: the memoized
        path is identical to a fresh walk (see :class:`RouteCache`), and the
        reported route metrics are unchanged — only the walk's CPU cost is
        skipped.
        """
        self._require(source)
        key %= self.space
        cache = self.route_cache
        owner = -1
        if cache is not None:
            owner = self.owner(key)
            cached = cache.get(source, owner)
            reg = obs_metrics.active()
            if cached is not None:
                if reg is not None:
                    reg.counter("overlay.route_cache.hits").inc()
                return self._route_done(key, list(cached))
            if reg is not None:
                reg.counter("overlay.route_cache.misses").inc()
        path = self._walk_route(source, key)
        if cache is not None:
            cache.put(source, owner, tuple(path))
        return self._route_done(key, path)

    def _walk_route(self, source: int, key: int) -> list[int]:
        """The uncached greedy finger walk; returns the hop-by-hop path."""
        path = [source]
        current = self.nodes[source]
        max_hops = _MAX_ROUTE_HOPS_FACTOR * max(self.bits, len(self._sorted_ids).bit_length() + 1)
        while True:
            # The current node may itself own the key (always possible at the
            # query initiator; with stale state also mid-route).
            if current.predecessor in self.nodes and ring_contains_open_closed(
                key, current.predecessor, current.id, self.space
            ):
                return path
            succ = self._live_successor(current)
            if ring_contains_open_closed(key, current.id, succ, self.space):
                if succ != path[-1]:
                    path.append(succ)
                return path
            nxt = self._closest_preceding_live_finger(current, key)
            if nxt == current.id:
                # All fingers useless/stale: fall back to the successor link.
                nxt = succ
            if len(path) > max_hops:
                raise OverlayError(
                    f"routing loop detected from {source} toward {key}"
                )
            path.append(nxt)
            current = self.nodes[nxt]

    @staticmethod
    def _route_done(key: int, path: list[int]) -> RouteResult:
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.routes").inc()
            reg.histogram("overlay.route_hops").observe(len(path) - 1)
        return RouteResult(key=key, path=tuple(path))

    def _live_successor(self, node: ChordNode) -> int:
        if node.successor in self.nodes:
            return node.successor
        # Successor-list fallback (Chord's fault-tolerance mechanism): the
        # first live entry takes over.
        for backup in node.successor_list:
            if backup in self.nodes:
                return backup
        # All r backups dead without repair — beyond the protocol's failure
        # tolerance; fall back to the oracle (a real node would re-bootstrap).
        succ = (node.successor + 1) % self.space
        return self.owner(succ)

    def _closest_preceding_live_finger(self, node: ChordNode, key: int) -> int:
        for finger in reversed(node.fingers):
            if finger in self.nodes and ring_contains_open_open(
                finger, node.id, key, self.space
            ):
                return finger
        return node.id

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def join(self, node_id: int) -> int:
        """Insert a node; returns the (modelled) message cost O(log N).

        The joining node routes to its successor, splices in, and builds its
        finger table; affected fingers of existing nodes are repaired, as the
        Chord join protocol would do.
        """
        node_id %= self.space
        if node_id in self.nodes:
            raise DuplicateNodeError(f"node {node_id} already in ring")
        cost = 0
        if self._sorted_ids:
            # Route the join message to the future successor.
            start = self._sorted_ids[0]
            cost += self.route(start, node_id).hops
        node = ChordNode(node_id, self.bits)
        self.nodes[node_id] = node
        insort(self._sorted_ids, node_id)
        self._refresh_node_state(node)
        cost += self._repair_after_insert(node_id)
        self._invalidate_routes()
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.joins").inc()
        return max(cost, 1)

    def leave(self, node_id: int) -> int:
        """Graceful departure: neighbors and finger holders are notified."""
        self._require(node_id)
        cost = self._repair_before_remove(node_id)
        del self.nodes[node_id]
        self._sorted_ids.remove(node_id)
        self._invalidate_routes()
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.leaves").inc()
        if not self._sorted_ids:
            return 1
        return max(cost, 1)

    def rename_node(self, old_id: int, new_id: int) -> int:
        """Move a node to a new identifier between its current neighbors.

        This is the runtime load-balancing primitive (paper §3.5): shifting a
        node's identifier shifts the ``(predecessor, id]`` boundary and hence
        which keys it stores.  The new identifier must stay strictly between
        the old predecessor and successor so ring order is unchanged.
        """
        self._require(old_id)
        new_id %= self.space
        if new_id == old_id:
            return 0
        if new_id in self.nodes:
            raise DuplicateNodeError(f"identifier {new_id} already taken")
        pred = self.predecessor_id(old_id)
        succ = self.successor_id(old_id)
        if len(self._sorted_ids) > 1 and not ring_contains_open_open(
            new_id, pred, succ, self.space
        ):
            raise OverlayError(
                f"new identifier {new_id} not between neighbors ({pred}, {succ})"
            )
        cost = self._repair_before_remove(old_id)
        node = self.nodes.pop(old_id)
        self._sorted_ids.remove(old_id)
        node.id = new_id
        self.nodes[new_id] = node
        insort(self._sorted_ids, new_id)
        self._refresh_node_state(node)
        cost += self._repair_after_insert(new_id)
        self._invalidate_routes()
        return max(cost, 1)

    def fail(self, node_id: int) -> None:
        """Crash failure: the node vanishes, everyone else's state goes stale."""
        self._require(node_id)
        del self.nodes[node_id]
        self._sorted_ids.remove(node_id)
        self._invalidate_routes()
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.failures").inc()

    # ------------------------------------------------------------------
    # Stabilization
    # ------------------------------------------------------------------
    def stabilize_node(self, node_id: int, rng: RandomLike = None) -> int:
        """One stabilization step at a node (paper §3.2, node failures).

        Fixes the successor/predecessor links and refreshes one random finger
        table entry; returns the message cost incurred.
        """
        self._require(node_id)
        gen = as_generator(rng)
        node = self.nodes[node_id]
        cost = 0
        true_succ = self.successor_id(node_id)
        if node.successor != true_succ:
            node.successor = true_succ
            cost += 1
        true_pred = self.predecessor_id(node_id)
        if node.predecessor != true_pred:
            node.predecessor = true_pred
            cost += 1
        i = int(gen.integers(0, self.bits))
        target = (node_id + (1 << i)) % self.space
        correct = self.owner(target)
        if node.fingers[i] != correct:
            node.fingers[i] = correct
            cost += max(len(self._sorted_ids).bit_length(), 1)
        # Refresh the successor list from the (now correct) successor — in
        # the protocol this is one exchange with the successor.
        pos = bisect_left(self._sorted_ids, node_id)
        n = len(self._sorted_ids)
        fresh = [
            self._sorted_ids[(pos + 1 + k) % n]
            for k in range(min(ChordNode.SUCCESSOR_LIST_SIZE, n - 1))
        ]
        if fresh != node.successor_list:
            node.successor_list = fresh
            cost += 1
        if cost:
            # Something was repaired: memoized routes may now take different
            # (possibly shorter) paths, so the memo is stale.
            self._invalidate_routes()
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("overlay.stabilizations").inc()
        return cost

    def stale_finger_fraction(self) -> float:
        """Fraction of finger entries pointing at wrong/dead nodes."""
        total = 0
        stale = 0
        for node in self.nodes.values():
            for i, finger in enumerate(node.fingers):
                total += 1
                target = (node.id + (1 << i)) % self.space
                if finger not in self.nodes or finger != self.owner(target):
                    stale += 1
        return stale / total if total else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise NodeNotFoundError(f"node {node_id} not in ring")

    def _invalidate_routes(self) -> None:
        if self.route_cache is not None:
            self.route_cache.invalidate()

    def _refresh_node_state(self, node: ChordNode) -> None:
        node.successor = self.successor_id(node.id)
        node.predecessor = self.predecessor_id(node.id)
        self._refresh_successor_list(node)
        for i in range(self.bits):
            node.fingers[i] = self.owner((node.id + (1 << i)) % self.space)

    def _refresh_successor_list(self, node: ChordNode) -> None:
        pos = bisect_left(self._sorted_ids, node.id)
        n = len(self._sorted_ids)
        node.successor_list = [
            self._sorted_ids[(pos + 1 + k) % n]
            for k in range(min(ChordNode.SUCCESSOR_LIST_SIZE, n - 1))
        ]

    def _iter_ids_in_ring_interval(self, low: int, high: int):
        """Yield live node ids in the ring interval ``(low, high]``."""
        if not self._sorted_ids:
            return
        low %= self.space
        high %= self.space
        if low == high:
            yield from self._sorted_ids
            return
        if low < high:
            lo_pos = bisect_right(self._sorted_ids, low)
            hi_pos = bisect_right(self._sorted_ids, high)
            yield from self._sorted_ids[lo_pos:hi_pos]
        else:
            lo_pos = bisect_right(self._sorted_ids, low)
            yield from self._sorted_ids[lo_pos:]
            hi_pos = bisect_right(self._sorted_ids, high)
            yield from self._sorted_ids[:hi_pos]

    def _repair_after_insert(self, node_id: int) -> int:
        """After a join: fix exactly the finger entries now owned by ``node_id``.

        Node ``n``'s finger ``i`` targets ``n + 2**i``; its owner changed to
        the new node iff that target lies in the new node's key range
        ``(pred, node_id]``.  Those ``n`` form one contiguous ring interval
        per finger level, found by bisection — O(bits·log N + updates)
        instead of a full table sweep.
        """
        cost = 0
        pred = self.predecessor_id(node_id)
        succ = self.successor_id(node_id)
        self.nodes[pred].successor = node_id
        self.nodes[succ].predecessor = node_id
        cost += 2
        if pred == node_id:  # single node: nothing else to fix
            return cost
        for i in range(self.bits):
            step = 1 << i
            low = (pred - step) % self.space
            high = (node_id - step) % self.space
            for nid in self._iter_ids_in_ring_interval(low, high):
                node = self.nodes[nid]
                if node.fingers[i] != node_id:
                    node.fingers[i] = node_id
                    cost += 1
        return cost

    def _repair_before_remove(self, node_id: int) -> int:
        """Before departure: repoint finger entries from ``node_id`` to its
        successor (which inherits the key range)."""
        succ = self.successor_id(node_id)
        pred = self.predecessor_id(node_id)
        if succ == node_id:  # last node leaving
            return 1
        cost = 0
        self.nodes[pred].successor = succ
        self.nodes[succ].predecessor = pred
        cost += 2
        for i in range(self.bits):
            step = 1 << i
            low = (pred - step) % self.space
            high = (node_id - step) % self.space
            for nid in self._iter_ids_in_ring_interval(low, high):
                node = self.nodes[nid]
                if node.fingers[i] == node_id:
                    node.fingers[i] = succ
                    cost += 1
        return cost

    def rebuild_all_fingers(self) -> None:
        """Recompute every node's links from scratch (test/maintenance aid)."""
        for node in self.nodes.values():
            self._refresh_node_state(node)
        self._invalidate_routes()
