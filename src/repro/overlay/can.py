"""CAN overlay network (Ratnasamy et al., SIGCOMM'01).

CAN partitions a d-dimensional coordinate space into rectangular *zones*, one
owner per zone; messages are routed greedily through zone neighbors (zones
sharing a (d-1)-face).  The paper uses Chord, but both the related-work
baseline it discusses (Andrzejak & Xu's inverse-SFC range system, reference
[1]) and its future-work "other topologies" direction are CAN-based, so we
implement CAN as a second overlay.

To present the same :class:`~repro.overlay.base.Overlay` interface as Chord
(keys from the 1-d index space ``[0, 2**bits)``), a key is placed at the zone
containing its *inverse-Hilbert* image — exactly the mapping of reference
[1].  Routing fidelity: :meth:`route` only uses zone-local neighbor state;
:meth:`owner` is the bookkeeping oracle.

Simplifications (documented, benign for message/node counting):

* the space is not a torus (greedy routing still converges because zones
  tile the space and per-hop distance strictly decreases);
* on departure a neighbor takes over the zone, so nodes may own several
  zones (real CAN does the same until background zone-merge runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.overlay.base import Overlay, RouteResult
from repro.sfc.hilbert import HilbertCurve
from repro.util.rng import RandomLike, as_generator

__all__ = ["Zone", "CanOverlay"]


@dataclass(frozen=True)
class Zone:
    """A rectangular zone: inclusive per-dimension grid bounds."""

    lows: tuple[int, ...]
    highs: tuple[int, ...]

    def contains(self, point: tuple[int, ...]) -> bool:
        return all(lo <= p <= hi for lo, p, hi in zip(self.lows, point, self.highs))

    def volume(self) -> int:
        vol = 1
        for lo, hi in zip(self.lows, self.highs):
            vol *= hi - lo + 1
        return vol

    def distance_to(self, point: tuple[int, ...]) -> int:
        """L1 distance from the zone (as a set) to ``point``."""
        dist = 0
        for lo, hi, p in zip(self.lows, self.highs, point):
            if p < lo:
                dist += lo - p
            elif p > hi:
                dist += p - hi
        return dist

    def touches(self, other: "Zone") -> bool:
        """True if the zones share a (d-1)-dimensional face."""
        face_dims = 0
        for lo1, hi1, lo2, hi2 in zip(self.lows, self.highs, other.lows, other.highs):
            if hi1 + 1 == lo2 or hi2 + 1 == lo1:
                face_dims += 1
            elif hi1 < lo2 or hi2 < lo1:
                return False  # separated along this axis: no contact at all
        return face_dims == 1

    def split(self, dim: int) -> tuple["Zone", "Zone"]:
        """Halve the zone along ``dim``; returns (lower, upper)."""
        lo, hi = self.lows[dim], self.highs[dim]
        if hi <= lo:
            raise OverlayError(f"zone too thin to split along dimension {dim}")
        mid = (lo + hi) // 2
        lower = Zone(
            self.lows, tuple(mid if i == dim else h for i, h in enumerate(self.highs))
        )
        upper = Zone(
            tuple(mid + 1 if i == dim else l for i, l in enumerate(self.lows)),
            self.highs,
        )
        return lower, upper


class CanOverlay(Overlay):
    """A simulated CAN over the 1-d key space ``[0, 2**bits)``.

    ``can_dims`` is CAN's own dimensionality (2 in the classic deployment);
    ``bits`` must be divisible by it so the inverse-Hilbert image of the key
    space exactly fills the zone grid.
    """

    def __init__(self, bits: int, can_dims: int = 2) -> None:
        super().__init__(bits)
        if can_dims < 1:
            raise OverlayError(f"can_dims must be >= 1, got {can_dims}")
        if bits % can_dims != 0:
            raise OverlayError(f"bits ({bits}) must be divisible by can_dims ({can_dims})")
        self.can_dims = can_dims
        self.resolution = bits // can_dims
        self.curve = HilbertCurve(can_dims, self.resolution)
        self.zones: dict[int, list[Zone]] = {}
        self._next_id = 0
        self._neighbor_cache: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------
    # Key geometry
    # ------------------------------------------------------------------
    def key_point(self, key: int) -> tuple[int, ...]:
        """Inverse-Hilbert image of a 1-d key in the CAN coordinate space."""
        return self.curve.decode(key % self.space)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def bootstrap(self) -> int:
        """Create the first node owning the whole space; returns its id."""
        if self.zones:
            raise DuplicateNodeError("overlay already bootstrapped")
        side = 1 << self.resolution
        zone = Zone((0,) * self.can_dims, (side - 1,) * self.can_dims)
        node_id = self._allocate_id()
        self.zones[node_id] = [zone]
        self._invalidate()
        return node_id

    def join(self, rng: RandomLike = None) -> int:
        """Join at a uniformly random point (the CAN join protocol)."""
        gen = as_generator(rng)
        point = tuple(
            int(gen.integers(0, 1 << self.resolution)) for _ in range(self.can_dims)
        )
        return self.join_at_point(point)

    def join_cost(self, point: tuple[int, ...], entry: int | None = None) -> int:
        """Messages a join at ``point`` would cost from ``entry``.

        The CAN protocol routes the join request to the target zone's owner
        (greedy hops), then the split notifies the new neighbor set — one
        message each."""
        if not self.zones:
            return 1
        if entry is None:
            entry = self.node_ids()[0]
        route = self.route_to_point(entry, point)
        owner_id = route.destination
        return route.hops + 1 + len(self.neighbors(owner_id))

    def join_at_point(self, point: tuple[int, ...]) -> int:
        """Split the zone containing ``point``; the new node takes the upper half."""
        if not self.zones:
            return self.bootstrap()
        owner_id, zone = self._zone_containing(point)
        dim = max(
            range(self.can_dims), key=lambda d: zone.highs[d] - zone.lows[d]
        )
        if zone.highs[dim] <= zone.lows[dim]:
            raise OverlayError("target zone cannot be split further")
        lower, upper = zone.split(dim)
        new_id = self._allocate_id()
        self.zones[owner_id] = [z for z in self.zones[owner_id] if z != zone] + [lower]
        self.zones[new_id] = [upper]
        self._invalidate()
        return new_id

    def leave(self, node_id: int) -> None:
        """Graceful departure: a face-adjacent neighbor takes over the zones."""
        self._require(node_id)
        departing = self.zones.pop(node_id)
        self._invalidate()
        if not self.zones:
            return
        for zone in departing:
            candidates = [
                nid
                for nid, zlist in self.zones.items()
                if any(z.touches(zone) for z in zlist)
            ]
            if not candidates:  # pragma: no cover - disconnected space
                candidates = list(self.zones)
            takeover = min(
                candidates, key=lambda nid: sum(z.volume() for z in self.zones[nid])
            )
            self.zones[takeover].append(zone)
        self._invalidate()

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def node_ids(self) -> list[int]:
        return sorted(self.zones)

    def owner(self, key: int) -> int:
        return self.owner_of_point(self.key_point(key))

    def owner_of_point(self, point: tuple[int, ...]) -> int:
        node_id, _ = self._zone_containing(point)
        return node_id

    def route(self, source: int, key: int) -> RouteResult:
        return self.route_to_point(source, self.key_point(key), key=key)

    def route_to_point(
        self, source: int, point: tuple[int, ...], key: int | None = None
    ) -> RouteResult:
        """Greedy neighbor routing toward the zone containing ``point``."""
        self._require(source)
        path = [source]
        current = source
        # Greedy distance strictly decreases, so no zone is visited twice.
        max_hops = sum(len(zlist) for zlist in self.zones.values()) + 2
        while not any(z.contains(point) for z in self.zones[current]):
            neighbors = self.neighbors(current)
            if not neighbors:  # pragma: no cover - single node owns all
                raise OverlayError("no neighbors to route through")
            best = min(
                neighbors,
                key=lambda nid: min(z.distance_to(point) for z in self.zones[nid]),
            )
            best_dist = min(z.distance_to(point) for z in self.zones[best])
            here_dist = min(z.distance_to(point) for z in self.zones[current])
            if best_dist >= here_dist and best_dist > 0:
                raise OverlayError("greedy routing stuck (should not happen)")
            path.append(best)
            current = best
            if len(path) > max_hops:  # pragma: no cover - defensive
                raise OverlayError("routing loop in CAN")
        return RouteResult(key=key if key is not None else -1, path=tuple(path))

    # ------------------------------------------------------------------
    # Neighborhood
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> list[int]:
        """Node ids whose zones share a face with any of this node's zones."""
        self._require(node_id)
        if self._neighbor_cache is None:
            self._rebuild_neighbors()
        assert self._neighbor_cache is not None
        return self._neighbor_cache[node_id]

    def _rebuild_neighbors(self) -> None:
        cache: dict[int, list[int]] = {nid: [] for nid in self.zones}
        ids = list(self.zones)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if any(
                    za.touches(zb) for za in self.zones[a] for zb in self.zones[b]
                ):
                    cache[a].append(b)
                    cache[b].append(a)
        self._neighbor_cache = cache

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def _invalidate(self) -> None:
        self._neighbor_cache = None

    def _require(self, node_id: int) -> None:
        if node_id not in self.zones:
            raise NodeNotFoundError(f"node {node_id} not in CAN overlay")

    def _zone_containing(self, point: tuple[int, ...]) -> tuple[int, Zone]:
        if not self.zones:
            raise EmptyOverlayError("CAN overlay has no nodes")
        for node_id, zlist in self.zones.items():
            for zone in zlist:
                if zone.contains(point):
                    return node_id, zone
        raise OverlayError(f"no zone contains point {point}")  # pragma: no cover
