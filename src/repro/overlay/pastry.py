"""Pastry overlay network (Rowstron & Druschel, Middleware'01 — paper ref [15]).

The third overlay family the paper cites.  Pastry interprets node
identifiers as digit strings base ``2^b`` and routes by *prefix matching*:
each hop forwards to a node sharing at least one more identifier digit with
the key, falling back to numeric closeness near the destination.

Per-node state:

* a **routing table** with one row per digit position — entry ``(i, d)``
  points to some node sharing the first ``i`` digits with this node and
  having digit ``d`` at position ``i``;
* a **leaf set** of the ``l/2`` numerically closest nodes on either side.

A key is owned by the **numerically closest** node (circular distance, ties
to the lower identifier) — a different ownership rule than Chord's
successor, which is why Pastry is provided as a routing substrate for the
topology ablation rather than plugged under the Squid engine (the engine's
window-scan logic assumes successor ownership; see DESIGN.md).

Routing is O(log_{2^b} N) hops with O(2^b · log_{2^b} N + l) state.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.overlay.base import Overlay, RouteResult
from repro.util.rng import RandomLike, as_generator

__all__ = ["PastryNode", "PastryOverlay"]


class PastryNode:
    """Local routing state of one Pastry peer."""

    __slots__ = ("id", "routing_table", "leaf_set")

    def __init__(self, node_id: int, rows: int, cols: int) -> None:
        self.id = node_id
        #: routing_table[i][d] = a node id or None
        self.routing_table: list[list[int | None]] = [
            [None] * cols for _ in range(rows)
        ]
        #: numerically closest neighbors (both sides), sorted
        self.leaf_set: list[int] = []


class PastryOverlay(Overlay):
    """A simulated Pastry network over ``[0, 2**bits)``."""

    def __init__(self, bits: int, digit_bits: int = 4, leaf_size: int = 8) -> None:
        super().__init__(bits)
        if digit_bits < 1 or bits % digit_bits != 0:
            raise OverlayError(
                f"bits ({bits}) must be a positive multiple of digit_bits ({digit_bits})"
            )
        if leaf_size < 2 or leaf_size % 2 != 0:
            raise OverlayError(f"leaf_size must be even and >= 2, got {leaf_size}")
        self.digit_bits = digit_bits
        self.rows = bits // digit_bits
        self.cols = 1 << digit_bits
        self.leaf_size = leaf_size
        self.nodes: dict[int, PastryNode] = {}
        self._sorted_ids: list[int] = []

    # ------------------------------------------------------------------
    # Identifier arithmetic
    # ------------------------------------------------------------------
    def digit(self, value: int, position: int) -> int:
        """The ``position``-th digit (0 = most significant) of an id."""
        shift = self.bits - (position + 1) * self.digit_bits
        return (value >> shift) & (self.cols - 1)

    def shared_prefix_len(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        length = 0
        for position in range(self.rows):
            if self.digit(a, position) != self.digit(b, position):
                break
            length += 1
        return length

    def circular_distance(self, a: int, b: int) -> int:
        diff = abs(a - b)
        return min(diff, self.space - diff)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bits: int,
        ids: list[int],
        digit_bits: int = 4,
        leaf_size: int = 8,
    ) -> "PastryOverlay":
        """Bulk-construct a converged Pastry network."""
        overlay = cls(bits, digit_bits=digit_bits, leaf_size=leaf_size)
        unique = sorted({int(i) for i in ids})
        if len(unique) != len(ids):
            raise DuplicateNodeError("duplicate identifiers in bulk build")
        for node_id in unique:
            if not 0 <= node_id < overlay.space:
                raise OverlayError(f"identifier {node_id} outside [0, {overlay.space})")
            overlay.nodes[node_id] = PastryNode(node_id, overlay.rows, overlay.cols)
        overlay._sorted_ids = unique
        for node in overlay.nodes.values():
            overlay._fill_state(node)
        return overlay

    @classmethod
    def with_random_ids(
        cls,
        bits: int,
        count: int,
        digit_bits: int = 4,
        leaf_size: int = 8,
        rng: RandomLike = None,
    ) -> "PastryOverlay":
        gen = as_generator(rng)
        ids: set[int] = set()
        space = 1 << bits
        while len(ids) < count:
            ids.add(int(gen.integers(0, space)))
        return cls.build(bits, sorted(ids), digit_bits=digit_bits, leaf_size=leaf_size)

    def _fill_state(self, node: PastryNode) -> None:
        # Leaf set: the leaf_size/2 nearest ids on each ring side.
        pos = bisect_left(self._sorted_ids, node.id)
        n = len(self._sorted_ids)
        half = self.leaf_size // 2
        leaves: set[int] = set()
        for offset in range(1, min(half, n - 1) + 1):
            leaves.add(self._sorted_ids[(pos + offset) % n])
            leaves.add(self._sorted_ids[(pos - offset) % n])
        leaves.discard(node.id)
        node.leaf_set = sorted(leaves)
        # Routing table: for each (row, digit), a node sharing `row` digits
        # with us and having `digit` next; choose the numerically closest
        # qualifying node (a deterministic stand-in for proximity choice).
        buckets: dict[tuple[int, int], int] = {}
        for other in self._sorted_ids:
            if other == node.id:
                continue
            row = self.shared_prefix_len(node.id, other)
            if row >= self.rows:
                continue
            col = self.digit(other, row)
            key = (row, col)
            best = buckets.get(key)
            if best is None or self.circular_distance(node.id, other) < self.circular_distance(
                node.id, best
            ):
                buckets[key] = other
        for (row, col), other in buckets.items():
            node.routing_table[row][col] = other

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def node_ids(self) -> list[int]:
        return list(self._sorted_ids)

    def owner(self, key: int) -> int:
        """Numerically closest node (circular; ties to the lower id)."""
        if not self._sorted_ids:
            raise EmptyOverlayError("pastry overlay has no nodes")
        key %= self.space
        pos = bisect_left(self._sorted_ids, key)
        candidates = {
            self._sorted_ids[(pos - 1) % len(self._sorted_ids)],
            self._sorted_ids[pos % len(self._sorted_ids)],
        }
        return min(
            candidates, key=lambda nid: (self.circular_distance(key, nid), nid)
        )

    def route(self, source: int, key: int) -> RouteResult:
        """Prefix routing with leaf-set delivery (local state only)."""
        if source not in self.nodes:
            raise NodeNotFoundError(f"node {source} not in overlay")
        key %= self.space
        path = [source]
        current = self.nodes[source]
        max_hops = 4 * (self.rows + self.leaf_size) + len(self._sorted_ids).bit_length()
        while True:
            # Delivery test: am I the numerically closest among myself and
            # my leaf set?  (With a converged leaf set this equals owner().)
            closest = min(
                [current.id, *current.leaf_set],
                key=lambda nid: (self.circular_distance(key, nid), nid),
            )
            if closest == current.id:
                return RouteResult(key=key, path=tuple(path))
            nxt = self._next_hop(current, key, closest)
            path.append(nxt)
            current = self.nodes[nxt]
            if len(path) > max_hops:  # pragma: no cover - defensive
                raise OverlayError(f"routing loop from {source} toward {key}")

    def _next_hop(self, node: PastryNode, key: int, closest_leaf: int) -> int:
        shared = self.shared_prefix_len(node.id, key)
        if shared < self.rows:
            candidate = node.routing_table[shared][self.digit(key, shared)]
            if candidate is not None:
                return candidate
        # Rare case / leaf range: go to the best-known numerically closer
        # node with at least as long a shared prefix.
        best = closest_leaf
        for row in range(self.rows):
            for entry in node.routing_table[row]:
                if entry is None:
                    continue
                if self.shared_prefix_len(entry, key) >= shared and self.circular_distance(
                    entry, key
                ) < self.circular_distance(best, key):
                    best = entry
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_size(self, node_id: int) -> int:
        """Populated routing entries + leaf set size (per-node state)."""
        if node_id not in self.nodes:
            raise NodeNotFoundError(f"node {node_id} not in overlay")
        node = self.nodes[node_id]
        table = sum(1 for row in node.routing_table for e in row if e is not None)
        return table + len(node.leaf_set)
